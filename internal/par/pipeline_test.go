package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"postopc/internal/obs"
)

// pipeConfigs are the stage worker counts the pipeline tests sweep.
func pipeConfigs() [][3]int {
	g := runtime.GOMAXPROCS(0)
	return [][3]int{{1, 1, 1}, {1, 2, 1}, {2, g, 2}, {g, g, g}}
}

// TestPipelineProcessesEveryBatchOnce runs a 3-stage pipeline over slot
// arrays and asserts every batch passes every stage exactly once, at every
// worker configuration.
func TestPipelineProcessesEveryBatchOnce(t *testing.T) {
	const batches = 23
	for _, cfg := range pipeConfigs() {
		var s1, s2, s3 [batches]int32
		stages := []Stage{
			{Name: "a", Workers: cfg[0], Fn: func(b int) error { atomic.AddInt32(&s1[b], 1); return nil }},
			{Name: "b", Workers: cfg[1], Fn: func(b int) error {
				if atomic.LoadInt32(&s1[b]) != 1 {
					return fmt.Errorf("batch %d reached stage b before stage a", b)
				}
				atomic.AddInt32(&s2[b], 1)
				return nil
			}},
			{Name: "c", Workers: cfg[2], Fn: func(b int) error { atomic.AddInt32(&s3[b], 1); return nil }},
		}
		if err := Pipeline(batches, stages); err != nil {
			t.Fatalf("cfg %v: %v", cfg, err)
		}
		for b := 0; b < batches; b++ {
			if s1[b] != 1 || s2[b] != 1 || s3[b] != 1 {
				t.Fatalf("cfg %v: batch %d ran stages (%d,%d,%d) times", cfg, b, s1[b], s2[b], s3[b])
			}
		}
	}
}

// TestPipelineLowestBatchError pins the error contract: with batch 3
// failing at the last stage and batch 9 failing at the first, the returned
// error is always batch 3's — every batch below the lowest failing one
// completed all stages first.
func TestPipelineLowestBatchError(t *testing.T) {
	const batches = 16
	err3 := errors.New("batch 3 failed late")
	err9 := errors.New("batch 9 failed early")
	for _, cfg := range pipeConfigs() {
		var done [batches]int32
		stages := []Stage{
			{Name: "a", Workers: cfg[0], Fn: func(b int) error {
				if b == 9 {
					return err9
				}
				return nil
			}},
			{Name: "b", Workers: cfg[1], Fn: func(b int) error { return nil }},
			{Name: "c", Workers: cfg[2], Fn: func(b int) error {
				if b == 3 {
					return err3
				}
				atomic.AddInt32(&done[b], 1)
				return nil
			}},
		}
		if err := Pipeline(batches, stages); !errors.Is(err, err3) {
			t.Fatalf("cfg %v: err = %v, want batch 3's", cfg, err)
		}
		for b := 0; b < 3; b++ {
			if done[b] != 1 {
				t.Fatalf("cfg %v: batch %d below the failure did not complete all stages", cfg, b)
			}
		}
	}
}

// TestPipelineFailedBatchSkipsLaterStages asserts a failed batch never runs
// its remaining stages.
func TestPipelineFailedBatchSkipsLaterStages(t *testing.T) {
	boom := errors.New("boom")
	var ran [2][8]int32
	stages := []Stage{
		{Name: "a", Workers: 2, Fn: func(b int) error {
			if b == 2 {
				return boom
			}
			atomic.AddInt32(&ran[0][b], 1)
			return nil
		}},
		{Name: "b", Workers: 2, Fn: func(b int) error { atomic.AddInt32(&ran[1][b], 1); return nil }},
	}
	if err := Pipeline(8, stages); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran[1][2] != 0 {
		t.Fatal("failed batch ran a later stage")
	}
	if ran[0][0] != 1 || ran[1][0] != 1 || ran[0][1] != 1 || ran[1][1] != 1 {
		t.Fatal("batches below the failure must run every stage")
	}
}

// TestPipelineDegenerate covers the no-batch and no-stage edges.
func TestPipelineDegenerate(t *testing.T) {
	if err := Pipeline(0, []Stage{{Name: "a", Fn: func(int) error { return errors.New("x") }}}); err != nil {
		t.Fatal(err)
	}
	if err := Pipeline(5, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineObs checks the stage-occupancy telemetry: busy/wait
// histograms and the occupancy gauge exist per stage and the batch counter
// counts admissions.
func TestPipelineObs(t *testing.T) {
	sink := obs.NewSink()
	stages := []Stage{
		{Name: "prep", Workers: 2, Fn: func(int) error { return nil }},
		{Name: "kernel", Workers: 2, Fn: func(int) error { return nil }},
	}
	const batches = 12
	if err := Pipeline(batches, stages, Obs(sink)); err != nil {
		t.Fatal(err)
	}
	if got := sink.Counter("par.pipeline_batches_total").Value(); got != batches {
		t.Fatalf("batches counter = %d, want %d", got, batches)
	}
	snap := sink.Metrics.Snapshot()
	hists := map[string]uint64{}
	for _, h := range snap.Histograms {
		hists[h.Name] = h.Count
	}
	for _, name := range []string{"prep", "kernel"} {
		if hists["par.pipeline_"+name+"_busy_ns"] == 0 {
			t.Fatalf("stage %s busy histogram empty", name)
		}
		occ := sink.Gauge("par.pipeline_" + name + "_occupancy").Value()
		if occ < 0 || occ > 1 {
			t.Fatalf("stage %s occupancy = %g, want [0,1]", name, occ)
		}
	}
}

// TestPipelineWorkersOptionCap checks the Workers option caps every
// stage's concurrency (smoke: the pipeline still completes correctly).
func TestPipelineWorkersOptionCap(t *testing.T) {
	var count atomic.Int32
	stages := []Stage{
		{Name: "a", Workers: 64, Fn: func(int) error { count.Add(1); return nil }},
		{Name: "b", Workers: 64, Fn: func(int) error { count.Add(1); return nil }},
	}
	if err := Pipeline(10, stages, Workers(1)); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 20 {
		t.Fatalf("ran %d stage executions, want 20", count.Load())
	}
}

func TestPipelineFnW(t *testing.T) {
	// FnW takes precedence over Fn and sees in-range worker slots; batch
	// coverage is exactly once per stage.
	const batches, workers = 16, 3
	var ran, bad, fnCalled int32
	stages := []Stage{{
		Name:    "w",
		Workers: workers,
		Fn:      func(int) error { atomic.AddInt32(&fnCalled, 1); return nil },
		FnW: func(b, w int) error {
			if w < 0 || w >= workers {
				atomic.AddInt32(&bad, 1)
			}
			atomic.AddInt32(&ran, 1)
			return nil
		},
	}}
	if err := Pipeline(batches, stages); err != nil {
		t.Fatal(err)
	}
	if fnCalled != 0 {
		t.Fatal("Fn ran despite FnW being set")
	}
	if ran != batches || bad != 0 {
		t.Fatalf("ran=%d bad=%d", ran, bad)
	}
}
