// Package pdk bundles the process design kit of the synthetic 90nm-class
// technology ("N90") used throughout the repository: layout design rules,
// the lithography recipe and process window for the poly (gate) layer, and
// the electrical device parameters that drive the timing and leakage
// models.
//
// The numbers are representative of a 90nm logic process printed with
// 193nm/0.85NA optics — the node the DAC 2005 paper targets — but they are
// our own: nothing here is calibrated to a real foundry.
package pdk

import (
	"fmt"

	"postopc/internal/geom"
	"postopc/internal/litho"
)

// Rules holds the layout design rules the cell generator obeys.
type Rules struct {
	// GateLengthNM is the drawn transistor gate length L.
	GateLengthNM geom.Coord
	// PolyWidthNM is the field-poly (routing) width.
	PolyWidthNM geom.Coord
	// PolyPitchNM is the contacted poly pitch.
	PolyPitchNM geom.Coord
	// PolyExtNM is the poly endcap extension past diffusion.
	PolyExtNM geom.Coord
	// PolySpaceNM is the minimum poly-to-poly space.
	PolySpaceNM geom.Coord
	// DiffWidthNM is the minimum diffusion width.
	DiffWidthNM geom.Coord
	// DiffPolySpaceNM is the diffusion-to-unrelated-poly space.
	DiffPolySpaceNM geom.Coord
	// ContactNM is the contact cut size.
	ContactNM geom.Coord
	// ContactSpaceNM is the minimum contact-to-contact space.
	ContactSpaceNM geom.Coord
	// ContactToGateNM is the contact-to-gate-poly spacing.
	ContactToGateNM geom.Coord
	// Metal1WidthNM and Metal1SpaceNM govern the M1 routing grid.
	Metal1WidthNM, Metal1SpaceNM geom.Coord
	// CellHeightNM is the standard-cell row height.
	CellHeightNM geom.Coord
	// RailWidthNM is the VDD/VSS power-rail width.
	RailWidthNM geom.Coord
	// SiteWidthNM is the placement site (x quantum).
	SiteWidthNM geom.Coord
}

// Device holds the compact transistor model parameters (alpha-power law for
// drive, exponential subthreshold model for leakage). See internal/device.
type Device struct {
	// VDD is the supply voltage in volts.
	VDD float64
	// VT0N, VT0P are the long-channel threshold voltages (absolute values).
	VT0N, VT0P float64
	// VTRollOffV is the short-channel threshold roll-off amplitude A in
	// VT(L) = VT0 - A·exp(-L/VTRollOffLNM). With A = 1.2V and l = 30nm
	// the roll-off is ~60mV at the 90nm drawn length and steepens to
	// ~2mV/nm of CD sensitivity there, matching 90nm-era behaviour.
	VTRollOffV float64
	// VTRollOffLNM is the roll-off characteristic length in nm.
	VTRollOffLNM float64
	// Alpha is the velocity-saturation exponent (≈1.3 at 90nm).
	Alpha float64
	// KPrimeN, KPrimeP are the drive factors in µA/(V^alpha) per square
	// (multiplied by W/L).
	KPrimeN, KPrimeP float64
	// I0LeakNAUM is the subthreshold leakage prefactor in nA/µm of width
	// at VT = 0.
	I0LeakNAUM float64
	// SubthresholdSwingMV is the subthreshold swing in mV/decade.
	SubthresholdSwingMV float64
	// CGateFFUM is the gate capacitance in fF per µm of gate width.
	CGateFFUM float64
	// CWireFF is the fixed per-fanout wire capacitance in fF.
	CWireFF float64
	// SigmaLRandomNM is the per-gate random (non-litho) CD variation used
	// by Monte Carlo timing.
	SigmaLRandomNM float64
	// RContactOhm is the nominal single-contact resistance at drawn size;
	// printed-contact area scales it (multi-layer extraction extension).
	RContactOhm float64
}

// PDK is the full kit.
type PDK struct {
	// Name identifies the technology.
	Name string
	// Rules are the layout design rules.
	Rules Rules
	// Litho is the poly-layer exposure recipe. Its Threshold is calibrated
	// so the reference dense line prints at drawn size (see TestN90
	// ThresholdCalibrated).
	Litho litho.Recipe
	// Window is the qualified process window.
	Window litho.ProcessWindow
	// Device are the transistor model parameters.
	Device Device
}

// N90 returns the default 90nm-class kit.
func N90() *PDK {
	return &PDK{
		Name: "N90",
		Rules: Rules{
			GateLengthNM:    90,
			PolyWidthNM:     120,
			PolyPitchNM:     340,
			PolyExtNM:       110,
			PolySpaceNM:     160,
			DiffWidthNM:     150,
			DiffPolySpaceNM: 120,
			ContactNM:       120,
			ContactSpaceNM:  160,
			ContactToGateNM: 100,
			Metal1WidthNM:   130,
			Metal1SpaceNM:   140,
			CellHeightNM:    2600,
			RailWidthNM:     240,
			SiteWidthNM:     170,
		},
		Litho: litho.Recipe{
			WavelengthNM: 193,
			NA:           0.85,
			SigmaOuter:   0.70,
			SigmaInner:   0,
			SourceRings:  3,
			// Calibrated so a 90nm line in a 340nm-pitch array prints at
			// drawn size under nominal focus/dose (litho.CalibrateThreshold;
			// verified by the pdk tests).
			Threshold: n90CalibratedThreshold,
			PixelNM:   10,
			GuardNM:   400,
			Polarity:  litho.ClearField,
		},
		Window: litho.ProcessWindow{DefocusNM: 120, DoseFrac: 0.05},
		Device: Device{
			VDD:                 1.2,
			VT0N:                0.38,
			VT0P:                0.40,
			VTRollOffV:          1.2,
			VTRollOffLNM:        30,
			Alpha:               1.3,
			KPrimeN:             560,
			KPrimeP:             250,
			I0LeakNAUM:          18,
			SubthresholdSwingMV: 95,
			CGateFFUM:           1.6,
			CWireFF:             0.35,
			SigmaLRandomNM:      1.5,
			RContactOhm:         60,
		},
	}
}

// n90CalibratedThreshold is the resist threshold at which the N90 reference
// structure (90nm line, 340nm pitch) prints at drawn size. Recomputed and
// asserted by the package tests; update it if the optics change.
const n90CalibratedThreshold = 0.3001

// The fast dual-Gaussian model calibration: fitted against the Abbe
// CD-through-pitch reference with litho.FitDualGaussian (RMS 1.7nm over
// pitches 280–1360nm) and re-anchored to print the reference structure at
// size. Asserted by the flow tests; refit if the optics change.
const (
	n90GaussianThreshold = 0.3353
	n90Gauss2SigmaNM     = 200
	n90Gauss2Weight      = -0.10
)

// GaussianLitho returns the poly recipe re-anchored for the fast Gaussian
// model: same optics, Gaussian-calibrated resist threshold.
func (p *PDK) GaussianLitho() litho.Recipe {
	r := p.Litho
	r.Threshold = n90GaussianThreshold
	return r
}

// n90ContactThreshold anchors the contact (dark-field) layer: a 120nm
// contact in a 280nm-pitch array prints at drawn size under the Abbe model
// (asserted by the pdk tests).
const n90ContactThreshold = 0.2070

// ContactLitho returns the contact-layer exposure recipe: same optics,
// dark-field polarity, its own calibrated threshold.
func (p *PDK) ContactLitho() litho.Recipe {
	r := p.Litho
	r.Polarity = litho.DarkField
	r.Threshold = n90ContactThreshold
	return r
}

// FastModel builds the calibrated dual-Gaussian fast imaging model — the
// production-style "OPC model" fitted to the rigorous simulator.
func (p *PDK) FastModel() (*litho.Gaussian, error) {
	return litho.NewGaussianDual(p.GaussianLitho(), n90Gauss2SigmaNM, n90Gauss2Weight)
}

// GatePitchWindow returns the layout window to clip around a gate channel
// for litho simulation: the channel expanded by the optical ambit (guard
// band plus one poly pitch of real context).
func (p *PDK) GatePitchWindow(channel geom.Rect) geom.Rect {
	ambit := p.Litho.GuardNM + p.Rules.PolyPitchNM
	return channel.Expand(ambit)
}

// Validate sanity-checks the kit.
func (p *PDK) Validate() error {
	if err := p.Litho.Validate(); err != nil {
		return err
	}
	r := p.Rules
	checks := []struct {
		ok  bool
		msg string
	}{
		{r.GateLengthNM > 0, "gate length"},
		{r.PolyPitchNM > r.GateLengthNM, "poly pitch vs gate length"},
		{r.CellHeightNM > 4*r.DiffWidthNM, "cell height"},
		{r.SiteWidthNM > 0, "site width"},
		{p.Device.VDD > p.Device.VT0N, "VDD vs VTN"},
		{p.Device.VDD > p.Device.VT0P, "VDD vs VTP"},
		{p.Device.Alpha >= 1 && p.Device.Alpha <= 2, "alpha"},
	}
	for _, c := range checks {
		if !c.ok {
			return fmt.Errorf("pdk %s: invalid %s", p.Name, c.msg)
		}
	}
	return nil
}
