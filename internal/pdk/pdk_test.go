package pdk

import (
	"math"
	"testing"

	"postopc/internal/geom"
	"postopc/internal/litho"
)

func TestN90Valid(t *testing.T) {
	p := N90()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestN90ThresholdCalibrated(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs a full Abbe simulation")
	}
	p := N90()
	m, err := litho.NewAbbe(p.Litho)
	if err != nil {
		t.Fatal(err)
	}
	th, err := litho.CalibrateThreshold(m, p.Rules.GateLengthNM, p.Rules.PolyPitchNM)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(th-p.Litho.Threshold) > 0.01 {
		t.Fatalf("stored threshold %.4f drifted from calibration %.4f — update n90CalibratedThreshold",
			p.Litho.Threshold, th)
	}
}

func TestN90ContactThresholdCalibrated(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs a full Abbe simulation")
	}
	p := N90()
	rec := p.ContactLitho()
	if rec.Polarity != litho.DarkField {
		t.Fatal("contact layer must be dark field")
	}
	m, err := litho.NewAbbe(rec)
	if err != nil {
		t.Fatal(err)
	}
	// Dark-field slit calibration must at least converge (sanity for the
	// polarity-aware bisection; slits need a higher threshold than 2-D
	// contacts, so the value itself is not compared).
	pitch := p.Rules.ContactNM + p.Rules.ContactSpaceNM
	if _, err := litho.CalibrateThreshold(m, p.Rules.ContactNM, pitch); err != nil {
		t.Fatal(err)
	}
	// The stored threshold must print a dense 2-D contact at drawn size —
	// that is the anchor it was calibrated on.
	var rects []geom.Rect
	span := 4 * pitch
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			cx := -span/2 + geom.Coord(i)*pitch
			cy := -span/2 + geom.Coord(j)*pitch
			rects = append(rects, geom.R(cx-60, cy-60, cx+60, cy+60))
		}
	}
	mask := litho.RasterizeRects(rects, rec.PixelNM, rec.GuardNM)
	im, err := m.Aerial(mask, litho.Nominal)
	if err != nil {
		t.Fatal(err)
	}
	res := im.MeasureCD(litho.AxisX, 0, -140, 140, 0, rec.Threshold, rec.Polarity)
	if !res.OK || math.Abs(res.CD-120) > 3 {
		t.Fatalf("stored contact threshold prints %.1fnm, want 120±3", res.CD)
	}
}

func TestGatePitchWindow(t *testing.T) {
	p := N90()
	ch := geom.R(1000, 1000, 1090, 1500)
	w := p.GatePitchWindow(ch)
	if !w.ContainsRect(ch) {
		t.Fatal("window must contain the channel")
	}
	wantAmbit := p.Litho.GuardNM + p.Rules.PolyPitchNM
	if w.X0 != ch.X0-wantAmbit || w.Y1 != ch.Y1+wantAmbit {
		t.Fatalf("window = %v", w)
	}
}

func TestValidateCatchesBadKits(t *testing.T) {
	mods := []func(*PDK){
		func(p *PDK) { p.Rules.GateLengthNM = 0 },
		func(p *PDK) { p.Rules.PolyPitchNM = p.Rules.GateLengthNM },
		func(p *PDK) { p.Rules.SiteWidthNM = 0 },
		func(p *PDK) { p.Device.VDD = 0.1 },
		func(p *PDK) { p.Device.Alpha = 3 },
		func(p *PDK) { p.Litho.NA = 0 },
	}
	for i, mod := range mods {
		p := N90()
		mod(p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation failure", i)
		}
	}
}
