// Package place produces a row-based standard-cell placement of a netlist,
// yielding the full-chip layout the post-OPC flow simulates. The placer is
// deliberately simple — connectivity-ordered row filling with fill-cell
// padding — but produces legal, abutted, DRC-plausible rows with the
// realistic poly-density context the litho simulation needs.
package place

import (
	"fmt"
	"math"
	"sort"

	"postopc/internal/geom"
	"postopc/internal/layout"
	"postopc/internal/netlist"
	"postopc/internal/stdcell"
)

// Options control the placer.
type Options struct {
	// RowWidthNM fixes the row width; 0 selects a near-square die.
	RowWidthNM geom.Coord
	// Utilization is the target row fill fraction before padding
	// (0 < u <= 1, default 0.85); the rest is fill cells, which also give
	// the row a realistic sprinkling of dummy poly.
	Utilization float64
}

// Result is a completed placement.
type Result struct {
	// Chip is the placed layout; instance names equal netlist gate names.
	Chip *layout.Chip
	// Rows is the number of placement rows.
	Rows int
	// FillCount is the number of fill cells inserted.
	FillCount int
}

// Place arranges every gate of n into rows.
func Place(n *netlist.Netlist, lib *stdcell.Library, opt Options) (*Result, error) {
	if opt.Utilization <= 0 || opt.Utilization > 1 {
		opt.Utilization = 0.85
	}
	conns, err := n.Connectivity(lib)
	if err != nil {
		return nil, err
	}
	order := levelOrder(n, conns)

	// Total placed width decides the row budget.
	var totalW geom.Coord
	cells := make([]*stdcell.Info, len(n.Gates))
	for i, g := range n.Gates {
		info, err := lib.Get(g.Cell)
		if err != nil {
			return nil, err
		}
		cells[i] = info
		totalW += info.Layout.Box.W()
	}
	rowH := lib.PDK.Rules.CellHeightNM
	rowW := opt.RowWidthNM
	if rowW <= 0 {
		// Near-square die at the requested utilization.
		usable := float64(totalW) / opt.Utilization
		rows := int(math.Round(math.Sqrt(usable / float64(rowH))))
		if rows < 1 {
			rows = 1
		}
		rowW = geom.Coord(math.Ceil(usable / float64(rows)))
	}
	site := lib.PDK.Rules.SiteWidthNM
	rowW = (rowW + site - 1) / site * site

	fill, err := lib.Get("FILL_X1")
	if err != nil {
		return nil, err
	}
	fillW := fill.Layout.Box.W()

	chip := &layout.Chip{Name: n.Name}
	res := &Result{Chip: chip}
	var x, y geom.Coord
	row := 0
	orient := func() layout.Orient {
		if row%2 == 1 {
			return layout.MX
		}
		return layout.R0
	}
	padRow := func(upto geom.Coord) {
		for x+fillW <= upto {
			chip.AddInstance(fmt.Sprintf("fill%d", res.FillCount), fill.Layout, geom.Pt(x, y), orient())
			res.FillCount++
			x += fillW
		}
	}
	budget := geom.Coord(float64(rowW) * opt.Utilization)
	for _, gi := range order {
		w := cells[gi].Layout.Box.W()
		if x+w > rowW || (x > budget && x+w > budget) {
			padRow(rowW)
			row++
			x, y = 0, geom.Coord(row)*rowH
		}
		chip.AddInstance(n.Gates[gi].Name, cells[gi].Layout, geom.Pt(x, y), orient())
		x += w
	}
	padRow(rowW)
	res.Rows = row + 1
	chip.BuildIndex()
	return res, nil
}

// levelOrder orders gates by topological level from the primary inputs so
// that logically adjacent gates place near each other; ties break by gate
// index for determinism.
func levelOrder(n *netlist.Netlist, conns map[string]*netlist.Conn) []int {
	level := make([]int, len(n.Gates))
	for i := range level {
		level[i] = -1
	}
	// Net levels seed from primary inputs.
	netLevel := map[string]int{}
	for _, in := range n.Inputs {
		netLevel[in] = 0
	}
	// Iterate to a fixed point (the netlists are DAGs of modest depth;
	// sequential cells break the recursion by treating Q as level 0).
	changed := true
	for pass := 0; changed && pass < len(n.Gates)+2; pass++ {
		changed = false
		for gi, g := range n.Gates {
			lvl := 0
			ready := true
			for pin, net := range g.Conn {
				c := conns[net]
				if c != nil && c.Driver.Gate == gi && c.Driver.Pin == pin {
					continue // own output
				}
				nl, ok := netLevel[net]
				if !ok {
					ready = false
					break
				}
				if nl+1 > lvl {
					lvl = nl + 1
				}
			}
			if !ready || lvl == level[gi] {
				continue
			}
			if level[gi] == -1 || lvl > level[gi] {
				level[gi] = lvl
				// Publish the output net level.
				for pin, net := range g.Conn {
					c := conns[net]
					if c != nil && c.Driver.Gate == gi && c.Driver.Pin == pin {
						netLevel[net] = lvl
					}
				}
				changed = true
			}
		}
	}
	order := make([]int, len(n.Gates))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if level[a] != level[b] {
			return level[a] < level[b]
		}
		return a < b
	})
	return order
}
