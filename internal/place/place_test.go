package place

import (
	"strings"
	"testing"

	"postopc/internal/geom"
	"postopc/internal/layout"
	"postopc/internal/netlist"
	"postopc/internal/pdk"
	"postopc/internal/stdcell"
)

var testLib *stdcell.Library

func lib(t *testing.T) *stdcell.Library {
	t.Helper()
	if testLib == nil {
		l, err := stdcell.NewLibrary(pdk.N90())
		if err != nil {
			t.Fatal(err)
		}
		testLib = l
	}
	return testLib
}

func TestPlaceAllGates(t *testing.T) {
	n := netlist.ArrayMultiplier(4)
	res, err := Place(n, lib(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ch := res.Chip
	// Every netlist gate has exactly one instance with the same name.
	for _, g := range n.Gates {
		if ch.FindInstance(g.Name) == nil {
			t.Fatalf("gate %s not placed", g.Name)
		}
	}
	if len(ch.Instances) != len(n.Gates)+res.FillCount {
		t.Fatalf("instance count %d != gates %d + fill %d",
			len(ch.Instances), len(n.Gates), res.FillCount)
	}
	if res.Rows < 2 {
		t.Fatalf("expected multiple rows, got %d", res.Rows)
	}
}

func TestPlaceNoOverlaps(t *testing.T) {
	n := netlist.RandomLogic(150, 12, 7)
	res, err := Place(n, lib(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ins := res.Chip.Instances
	for i := range ins {
		for j := i + 1; j < len(ins); j++ {
			if ins[i].Bounds().Intersects(ins[j].Bounds()) {
				t.Fatalf("instances %s and %s overlap", ins[i].Name, ins[j].Name)
			}
		}
	}
}

func TestPlaceRowsAlignedAndFlipped(t *testing.T) {
	n := netlist.RippleCarryAdder(8)
	res, err := Place(n, lib(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rowH := lib(t).PDK.Rules.CellHeightNM
	for i := range res.Chip.Instances {
		in := &res.Chip.Instances[i]
		if in.Origin.Y%rowH != 0 {
			t.Fatalf("%s not on a row boundary: %v", in.Name, in.Origin)
		}
		row := int(in.Origin.Y / rowH)
		wantOrient := layout.R0
		if row%2 == 1 {
			wantOrient = layout.MX
		}
		if in.Orient != wantOrient {
			t.Fatalf("%s row %d orientation %v", in.Name, row, in.Orient)
		}
	}
}

func TestPlaceFixedRowWidth(t *testing.T) {
	n := netlist.InverterChain(20)
	res, err := Place(n, lib(t), Options{RowWidthNM: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Chip.Die.W() > 10200 {
		t.Fatalf("die width %d exceeds requested row width", res.Chip.Die.W())
	}
}

func TestPlaceDeterministic(t *testing.T) {
	n := netlist.RandomLogic(80, 10, 3)
	a, err := Place(n, lib(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place(n, lib(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Chip.Instances) != len(b.Chip.Instances) {
		t.Fatal("nondeterministic instance count")
	}
	for i := range a.Chip.Instances {
		x, y := a.Chip.Instances[i], b.Chip.Instances[i]
		if x.Name != y.Name || x.Origin != y.Origin || x.Orient != y.Orient {
			t.Fatalf("instance %d differs: %v vs %v", i, x, y)
		}
	}
}

func TestPlaceKeepsConnectedGatesNear(t *testing.T) {
	// In an inverter chain, successive gates should be placed within a few
	// rows of each other thanks to level ordering.
	n := netlist.InverterChain(30)
	res, err := Place(n, lib(t), Options{RowWidthNM: 8000})
	if err != nil {
		t.Fatal(err)
	}
	var prev geom.Point
	for i := 0; i < 30; i++ {
		in := res.Chip.FindInstance(n.Gates[i].Name)
		if in == nil {
			t.Fatalf("missing u%d", i)
		}
		if i > 0 {
			dy := in.Origin.Y - prev.Y
			if dy < 0 {
				dy = -dy
			}
			if dy > 2*lib(t).PDK.Rules.CellHeightNM {
				t.Fatalf("chain gate %d jumped %d rows away", i, dy/lib(t).PDK.Rules.CellHeightNM)
			}
		}
		prev = in.Origin
	}
}

func TestPlaceFillNames(t *testing.T) {
	n := netlist.InverterChain(3)
	res, err := Place(n, lib(t), Options{RowWidthNM: 6000})
	if err != nil {
		t.Fatal(err)
	}
	if res.FillCount == 0 {
		t.Fatal("expected fill padding")
	}
	found := 0
	for i := range res.Chip.Instances {
		if strings.HasPrefix(res.Chip.Instances[i].Name, "fill") {
			found++
		}
	}
	if found != res.FillCount {
		t.Fatalf("fill instances %d != reported %d", found, res.FillCount)
	}
}
