package report

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestTableGolden pins the exact rendered bytes of Table.Fprint across the
// column-width edge cases: no rows, a single row, multibyte (non-ASCII)
// cell contents, and ragged rows with missing or extra cells.
func TestTableGolden(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Table
	}{
		{"empty", func() *Table {
			// Headers only: the separator still renders, sized to the headers.
			return NewTable("empty table", "gate", "slack_ps")
		}},
		{"untitled_empty", func() *Table {
			return NewTable("", "k")
		}},
		{"single_row", func() *Table {
			tb := NewTable("one row", "name", "value")
			tb.Add("alpha", "42")
			return tb
		}},
		{"multibyte", func() *Table {
			// Rune width != byte width: µ is 2 bytes, λ is 2 bytes, the CJK
			// cell is 3 bytes per rune. Columns must still align.
			tb := NewTable("units", "quantity", "unité")
			tb.Add("pitch", "0.28µm")
			tb.Add("λ/NA", "193nm")
			tb.Add("幅", "90nm")
			return tb
		}},
		{"ragged", func() *Table {
			// Missing cells render empty; extra cells beyond the declared
			// columns are kept in Rows but not rendered.
			tb := NewTable("ragged", "a", "bb", "ccc")
			tb.Add("1")
			tb.Add("1", "2", "3", "dropped")
			tb.Add("", "2")
			return tb
		}},
		{"addf", func() *Table {
			tb := NewTable("mixed", "gate", "cd_nm", "n")
			tb.AddF(2, "g12", 87.6543, 3)
			tb.AddF(2, "g7", -1.0, 11)
			return tb
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := c.build().String()
			path := filepath.Join("testdata", c.name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/report -update` to create)", err)
			}
			if got != string(want) {
				t.Errorf("rendering differs from %s:\ngot:\n%s\nwant:\n%s", path, got, want)
			}
		})
	}
}

// TestTableMultibyteAlignment asserts the alignment property directly so a
// careless golden regeneration cannot hide a width regression: every
// rendered row of a two-column table must place the second column at one
// fixed rune offset.
func TestTableMultibyteAlignment(t *testing.T) {
	tb := NewTable("", "name", "v")
	tb.Add("µµµ", "1")
	tb.Add("abcd", "2")
	out := tb.String()
	var offsets []int
	for _, line := range splitLines(out) {
		if line == "" {
			continue
		}
		runes := []rune(line)
		last := -1
		for i := len(runes) - 1; i >= 0; i-- {
			if runes[i] != ' ' {
				continue
			}
			last = i + 1
			break
		}
		offsets = append(offsets, last)
	}
	for _, o := range offsets[1:] {
		if o != offsets[0] {
			t.Fatalf("second column drifts: offsets %v in\n%s", offsets, out)
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
