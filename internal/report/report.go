// Package report renders the tables and data series the benchmark harness
// and CLIs emit: aligned ASCII tables for terminal output and CSV for
// figure regeneration.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode/utf8"
)

// Table is a titled, column-aligned text table.
type Table struct {
	// Title is printed above the table.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows hold the data cells.
	Rows [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row; missing cells render empty, extras are kept.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddF appends a row of mixed values, formatting float64 with the given
// default precision, ints plainly and everything else via fmt.Sprint.
func (t *Table) AddF(prec int, values ...interface{}) {
	row := make([]string, 0, len(values))
	for _, v := range values {
		switch x := v.(type) {
		case float64:
			row = append(row, strconv.FormatFloat(x, 'f', prec, 64))
		case string:
			row = append(row, x)
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint writes the aligned table. Cell widths are measured in runes so
// multibyte contents (µm units, Greek letters in column names) stay
// aligned.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = utf8.RuneCountInString(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if w := utf8.RuneCountInString(c); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, wd := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := wd - utf8.RuneCountInString(c); pad > 0 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// CSV writes the table as comma-separated values (header + rows). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV(w io.Writer) {
	writeCSVRow(w, t.Columns)
	for _, r := range t.Rows {
		writeCSVRow(w, r)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	for i, c := range cells {
		if i > 0 {
			io.WriteString(w, ",")
		}
		if strings.ContainsAny(c, ",\"\n") {
			io.WriteString(w, `"`+strings.ReplaceAll(c, `"`, `""`)+`"`)
		} else {
			io.WriteString(w, c)
		}
	}
	io.WriteString(w, "\n")
}

// Series is one named (x, y) data series of a figure.
type Series struct {
	// Name labels the series.
	Name string
	// X, Y are parallel coordinate slices.
	X, Y []float64
}

// WriteSeriesCSV emits long-format CSV (series,x,y) for figure data.
func WriteSeriesCSV(w io.Writer, series []Series) {
	io.WriteString(w, "series,x,y\n")
	for _, s := range series {
		for i := range s.X {
			fmt.Fprintf(w, "%s,%g,%g\n", s.Name, s.X[i], s.Y[i])
		}
	}
}

// Histogram renders a horizontal ASCII histogram of binned counts.
func Histogram(w io.Writer, title string, loEdge, binWidth float64, counts []int, maxBar int) {
	if maxBar <= 0 {
		maxBar = 50
	}
	peak := 1
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	fmt.Fprintf(w, "== %s ==\n", title)
	for i, c := range counts {
		lo := loEdge + float64(i)*binWidth
		bar := strings.Repeat("#", c*maxBar/peak)
		fmt.Fprintf(w, "%8.1f..%-8.1f %6d %s\n", lo, lo+binWidth, c, bar)
	}
}
