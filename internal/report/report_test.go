package report

import (
	"strings"
	"testing"
)

func TestTableFprint(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.Add("alpha", "1")
	tb.Add("b", "22222")
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns align: "value" column starts at the same offset everywhere.
	hdr := lines[1]
	row := lines[3]
	if strings.Index(hdr, "value") != strings.Index(row, "1") {
		t.Fatalf("misaligned:\n%s", out)
	}
}

func TestTableAddF(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddF(2, 1.23456, "x", 7)
	if got := tb.Rows[0][0]; got != "1.23" {
		t.Fatalf("float cell = %q", got)
	}
	if got := tb.Rows[0][2]; got != "7" {
		t.Fatalf("int cell = %q", got)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.Add("x,y", `q"z`)
	var b strings.Builder
	tb.CSV(&b)
	want := "a,b\n\"x,y\",\"q\"\"z\"\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var b strings.Builder
	WriteSeriesCSV(&b, []Series{
		{Name: "s1", X: []float64{1, 2}, Y: []float64{10, 20}},
		{Name: "s2", X: []float64{3}, Y: []float64{30}},
	})
	got := b.String()
	want := "series,x,y\ns1,1,10\ns1,2,20\ns2,3,30\n"
	if got != want {
		t.Fatalf("series csv = %q", got)
	}
}

func TestHistogramRender(t *testing.T) {
	var b strings.Builder
	Histogram(&b, "h", -10, 5, []int{1, 4, 2}, 20)
	out := b.String()
	if !strings.Contains(out, "== h ==") || !strings.Contains(out, "####") {
		t.Fatalf("histogram:\n%s", out)
	}
	// Peak bin renders the longest bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[2], "#") != 20 {
		t.Fatalf("peak bar wrong:\n%s", out)
	}
	// Zero maxBar falls back to default without panicking.
	Histogram(&b, "h2", 0, 1, []int{0, 0}, 0)
}
