// Package route is a lightweight global router: every net is routed as a
// chain of L-shaped (HVH) connections over the placement, horizontal wire
// on metal2 and vertical wire on metal3-equivalent tracks. It upgrades the
// flow's wire model from HPWL estimates to actual routed lengths and
// shapes — the "placed and routed" substrate the paper's abstract
// describes — while deliberately skipping congestion (the synthetic
// designs are small and the timing flow only consumes lengths).
package route

import (
	"fmt"
	"sort"

	"postopc/internal/geom"
	"postopc/internal/layout"
	"postopc/internal/netlist"
	"postopc/internal/stdcell"
)

// Options configure the router.
type Options struct {
	// WireWidthNM is the drawn routing wire width (defaults to the kit's
	// M1 width).
	WireWidthNM geom.Coord
	// CapPerUMFF converts routed length to capacitance in Loads().
	CapPerUMFF float64
	// ViaCapFF is added per via in Loads().
	ViaCapFF float64
}

// Net is one routed net.
type Net struct {
	// Name matches the netlist net.
	Name string
	// LengthNM is the total routed wirelength.
	LengthNM geom.Coord
	// Vias counts layer changes.
	Vias int
	// HSegs and VSegs are the wire shapes (horizontal on M2, vertical on
	// the next layer up).
	HSegs, VSegs []geom.Rect
}

// Result is a completed routing.
type Result struct {
	// Nets by name (single-pin nets are present with zero length).
	Nets map[string]*Net
	// TotalLengthNM sums all nets.
	TotalLengthNM geom.Coord
	// TotalVias counts all layer changes.
	TotalVias int

	opt Options
}

// Route connects every net of the placed design.
func Route(chip *layout.Chip, n *netlist.Netlist, lib *stdcell.Library, opt Options) (*Result, error) {
	if opt.WireWidthNM <= 0 {
		opt.WireWidthNM = lib.PDK.Rules.Metal1WidthNM
	}
	if opt.CapPerUMFF <= 0 {
		opt.CapPerUMFF = 0.20
	}
	conns, err := n.Connectivity(lib)
	if err != nil {
		return nil, err
	}
	centers := make([]geom.Point, len(n.Gates))
	for gi, g := range n.Gates {
		inst := chip.FindInstance(g.Name)
		if inst == nil {
			return nil, fmt.Errorf("route: gate %s not placed", g.Name)
		}
		centers[gi] = inst.Bounds().Center()
	}
	res := &Result{Nets: map[string]*Net{}, opt: opt}
	names := make([]string, 0, len(conns))
	for net := range conns {
		names = append(names, net)
	}
	sort.Strings(names)
	for _, netName := range names {
		c := conns[netName]
		var pins []geom.Point
		if c.Driver.Gate >= 0 {
			pins = append(pins, centers[c.Driver.Gate])
		}
		for _, s := range c.Sinks {
			if s.Gate >= 0 {
				pins = append(pins, centers[s.Gate])
			}
		}
		res.Nets[netName] = routeNet(netName, pins, opt.WireWidthNM)
		res.TotalLengthNM += res.Nets[netName].LengthNM
		res.TotalVias += res.Nets[netName].Vias
	}
	return res, nil
}

// routeNet chains the pins in x order with L-shaped connections.
func routeNet(name string, pins []geom.Point, w geom.Coord) *Net {
	out := &Net{Name: name}
	if len(pins) < 2 {
		return out
	}
	order := append([]geom.Point(nil), pins...)
	sort.Slice(order, func(i, j int) bool {
		if order[i].X != order[j].X {
			return order[i].X < order[j].X
		}
		return order[i].Y < order[j].Y
	})
	half := w / 2
	for i := 0; i+1 < len(order); i++ {
		a, b := order[i], order[i+1]
		dx := absC(b.X - a.X)
		dy := absC(b.Y - a.Y)
		out.LengthNM += dx + dy
		if dx > 0 {
			out.HSegs = append(out.HSegs, geom.R(minC(a.X, b.X)-half, a.Y-half, maxC(a.X, b.X)+half, a.Y+half))
		}
		if dy > 0 {
			out.VSegs = append(out.VSegs, geom.R(b.X-half, minC(a.Y, b.Y)-half, b.X+half, maxC(a.Y, b.Y)+half))
		}
		if dx > 0 && dy > 0 {
			out.Vias++ // the L corner
		}
	}
	// Pin drops: one via per pin down to the cell.
	out.Vias += len(pins)
	return out
}

// Loads converts routed lengths (plus via caps) to per-net capacitance for
// sta.Config.WireLoads.
func (r *Result) Loads() map[string]float64 {
	out := make(map[string]float64, len(r.Nets))
	for name, nt := range r.Nets {
		out[name] = float64(nt.LengthNM)/1000*r.opt.CapPerUMFF + float64(nt.Vias)*r.opt.ViaCapFF
	}
	return out
}

// WirelengthHistogram bins net lengths for reporting.
func (r *Result) WirelengthHistogram(binNM geom.Coord, bins int) []int {
	counts := make([]int, bins)
	for _, nt := range r.Nets {
		k := int(nt.LengthNM / binNM)
		if k >= bins {
			k = bins - 1
		}
		counts[k]++
	}
	return counts
}

func absC(v geom.Coord) geom.Coord {
	if v < 0 {
		return -v
	}
	return v
}

func minC(a, b geom.Coord) geom.Coord {
	if a < b {
		return a
	}
	return b
}

func maxC(a, b geom.Coord) geom.Coord {
	if a > b {
		return a
	}
	return b
}
