package route

import (
	"testing"

	"postopc/internal/geom"
	"postopc/internal/netlist"
	"postopc/internal/pdk"
	"postopc/internal/place"
	"postopc/internal/stdcell"
)

var testLib *stdcell.Library

func lib(t *testing.T) *stdcell.Library {
	t.Helper()
	if testLib == nil {
		l, err := stdcell.NewLibrary(pdk.N90())
		if err != nil {
			t.Fatal(err)
		}
		testLib = l
	}
	return testLib
}

func TestRouteNetTwoPins(t *testing.T) {
	nt := routeNet("n", []geom.Point{geom.Pt(0, 0), geom.Pt(1000, 500)}, 130)
	if nt.LengthNM != 1500 {
		t.Fatalf("L-route length = %d", nt.LengthNM)
	}
	if len(nt.HSegs) != 1 || len(nt.VSegs) != 1 {
		t.Fatalf("segments = %d/%d", len(nt.HSegs), len(nt.VSegs))
	}
	// Corner via + 2 pin vias.
	if nt.Vias != 3 {
		t.Fatalf("vias = %d", nt.Vias)
	}
	// Wire shapes span the route with the wire width.
	if nt.HSegs[0].H() != 130 || nt.VSegs[0].W() != 130 {
		t.Fatal("wire width wrong")
	}
}

func TestRouteNetDegenerate(t *testing.T) {
	if nt := routeNet("n", nil, 130); nt.LengthNM != 0 || nt.Vias != 0 {
		t.Fatal("empty net")
	}
	if nt := routeNet("n", []geom.Point{geom.Pt(5, 5)}, 130); nt.LengthNM != 0 {
		t.Fatal("single-pin net")
	}
	// Aligned pins: straight route, no corner via.
	nt := routeNet("n", []geom.Point{geom.Pt(0, 100), geom.Pt(900, 100)}, 130)
	if nt.LengthNM != 900 || len(nt.VSegs) != 0 || nt.Vias != 2 {
		t.Fatalf("straight route: %+v", nt)
	}
}

func TestRouteChainCoversHPWL(t *testing.T) {
	// Chained L-routes are never shorter than the half perimeter.
	pins := []geom.Point{{X: 0, Y: 0}, {X: 500, Y: 900}, {X: 1200, Y: 100}, {X: 300, Y: 700}}
	nt := routeNet("n", pins, 130)
	bb := geom.BBoxOf(pins)
	if nt.LengthNM < bb.W()+bb.H() {
		t.Fatalf("routed %d below HPWL %d", nt.LengthNM, bb.W()+bb.H())
	}
}

func TestRoutePlacedDesign(t *testing.T) {
	n := netlist.RippleCarryAdder(4)
	pl, err := place.Place(n, lib(t), place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(pl.Chip, n, lib(t), Options{CapPerUMFF: 0.2, ViaCapFF: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	conns, _ := n.Connectivity(lib(t))
	if len(res.Nets) != len(conns) {
		t.Fatalf("routed %d of %d nets", len(res.Nets), len(conns))
	}
	if res.TotalLengthNM <= 0 || res.TotalVias <= 0 {
		t.Fatalf("totals: %d nm, %d vias", res.TotalLengthNM, res.TotalVias)
	}
	// Loads: every net present, non-negative, multi-pin nets positive.
	loads := res.Loads()
	for name, nt := range res.Nets {
		l := loads[name]
		if l < 0 {
			t.Fatalf("negative load on %s", name)
		}
		if nt.LengthNM > 0 && l <= 0 {
			t.Fatalf("routed net %s has no load", name)
		}
	}
	// Histogram covers all nets.
	h := res.WirelengthHistogram(2000, 10)
	total := 0
	for _, c := range h {
		total += c
	}
	if total != len(res.Nets) {
		t.Fatalf("histogram total %d", total)
	}
	// Determinism.
	res2, err := Route(pl.Chip, n, lib(t), Options{CapPerUMFF: 0.2, ViaCapFF: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalLengthNM != res2.TotalLengthNM || res.TotalVias != res2.TotalVias {
		t.Fatal("routing not deterministic")
	}
}

func TestRouteUnplacedGate(t *testing.T) {
	n := netlist.InverterChain(3)
	pl, err := place.Place(netlist.InverterChain(2), lib(t), place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Route(pl.Chip, n, lib(t), Options{}); err == nil {
		t.Fatal("unplaced gate accepted")
	}
}
