package sta

import (
	"sort"

	"postopc/internal/timinglib"
)

// AnalyzeIncremental re-runs STA under new annotations, recomputing only
// the fan-out cone of gates whose annotation actually changed relative to
// a baseline produced by Analyze (or a previous AnalyzeIncremental) on the
// same graph. The result is bit-identical to a full Analyze(cfg, ann) —
// the incremental engine is purely a work-avoidance strategy:
//
//   - Candidate gates (any gate named in either annotation set) are
//     re-evaluated; a gate whose electrical view comes out identical is
//     treated as unchanged, so corners that only perturb a subset of gates
//     pay only for that subset.
//   - Arrivals are recomputed in topological order only where an input
//     arrival, the gate's own evaluation, or its output load changed; a
//     recomputed arrival that matches the baseline bit-for-bit stops the
//     cone there.
//   - Clean nets share their arrival structs with the baseline (arrivals
//     are immutable once an analysis returns), and leakage is re-summed in
//     the same gate order as Analyze so the total carries identical
//     floating-point rounding.
//
// The baseline must have been analyzed under the same arrival-relevant
// boundary conditions (InputSlewPS, PrimaryLoadFF, WireLoads). ClockPS,
// SetupPS and KPaths may differ — they only shape required times and path
// reporting, which are always recomputed. When the baseline is unusable —
// nil, from an older serialization without retained state, differing
// boundary conditions, or when either annotation set carries the "*"
// blanket default (which touches every gate) — AnalyzeIncremental falls
// back to a full Analyze. Telemetry: "sta.incremental_analyses_total",
// "sta.incremental_gate_evals" (candidates re-evaluated) and
// "sta.incremental_cone_gates" (arrivals recomputed).
func (g *Graph) AnalyzeIncremental(cfg Config, ann Annotations, base *Result) (*Result, error) {
	if !g.incrementalOK(cfg, ann, base) {
		return g.Analyze(cfg, ann)
	}
	tA := g.hAnalyze.StartTimer()
	defer g.hAnalyze.ObserveSince(tA)
	g.cIncr.Inc()
	if cfg.KPaths <= 0 {
		cfg.KPaths = 10
	}
	n := g.Netlist

	// Candidate gates: everything named by either annotation set. Sorted
	// so a failing evaluation surfaces the same error regardless of map
	// iteration order.
	var candidates []int
	for name := range base.ann {
		if gi, ok := g.byName[name]; ok {
			candidates = append(candidates, gi)
		}
	}
	for name := range ann {
		if _, dup := base.ann[name]; dup {
			continue // already collected from the baseline set
		}
		if gi, ok := g.byName[name]; ok {
			candidates = append(candidates, gi)
		}
	}
	sort.Ints(candidates)
	g.hIncrEvals.Observe(float64(len(candidates)))

	// Re-evaluate candidates; gates whose electrical view is unchanged do
	// not enter the dirty set.
	evals := make([]timinglib.Eval, len(base.evals))
	copy(evals, base.evals)
	gateDirty := make([]bool, len(n.Gates))
	loadDirty := make([]bool, len(g.netNames))
	var dirtyLoads []int
	for _, gi := range candidates {
		ev, err := g.evalGate(gi, ann)
		if err != nil {
			return nil, err
		}
		if evalEqual(ev, base.evals[gi]) {
			continue
		}
		evals[gi] = ev
		gateDirty[gi] = true
		// A changed input capacitance changes the load of every net this
		// gate sinks, which re-times their drivers. (The current device
		// model derives Cin from drawn geometry only, so this stays empty
		// under length annotations — but the engine must not assume that.)
		if !cinEqual(ev.CinFF, base.evals[gi].CinFF) {
			for _, pn := range g.inputs[gi] {
				if !loadDirty[pn.idx] {
					loadDirty[pn.idx] = true
					dirtyLoads = append(dirtyLoads, pn.idx)
				}
			}
		}
	}

	// Loads: shared with the baseline except where a sink capacitance
	// changed; dirty nets are recomputed with the same per-net summation
	// order as netLoads.
	loads := base.loads
	if len(dirtyLoads) > 0 {
		loads = make([]float64, len(base.loads))
		copy(loads, base.loads)
		for _, ni := range dirtyLoads {
			nl := g.netLoad(cfg, g.netNames[ni], g.connOf[ni], evals)
			if nl == base.loads[ni] {
				loadDirty[ni] = false // cap shift cancelled out: load clean
				continue
			}
			loads[ni] = nl
		}
	}

	// Arrivals: start from the baseline's (shared structs) and recompute
	// the dirty cone in topological order.
	arr := make([]*arrival, len(base.arr))
	copy(arr, base.arr)
	res := &Result{g: g, arr: arr, cfg: cfg, ann: ann, evals: evals, loads: loads}
	res.LeakNW = sumLeak(evals)

	dirtyNet := make([]bool, len(g.netNames))
	// Seeds: primary-input arrivals depend only on cfg (verified equal);
	// flop launches depend on the flop's evaluation and its Q-net load.
	for gi := range n.Gates {
		qi := g.outIdx[gi]
		if qi < 0 || (!gateDirty[gi] && !loadDirty[qi]) {
			continue
		}
		if ni, a, ok := g.launchArrival(gi, cfg, evals, loads); ok {
			if !arrivalEqual(a, base.arr[ni]) {
				arr[ni] = a
				dirtyNet[ni] = true
			}
		}
	}

	tP := g.hArrival.StartTimer()
	cone := 0
	for _, gi := range g.topo {
		oi := g.outIdx[gi]
		if oi < 0 || (!gateDirty[gi] && !loadDirty[oi] && !g.anyInputDirty(gi, dirtyNet)) {
			continue
		}
		cone++
		out := g.propagateGate(gi, evals[gi], loads[oi], arr)
		if !arrivalEqual(out, base.arr[oi]) {
			arr[oi] = out
			dirtyNet[oi] = true
		}
	}
	g.hArrival.ObserveSince(tP)
	g.hConeGates.Observe(float64(cone))

	if err := g.finish(res); err != nil {
		return nil, err
	}
	return res, nil
}

// incrementalOK reports whether the baseline can seed an incremental
// re-analysis under the new config and annotations.
func (g *Graph) incrementalOK(cfg Config, ann Annotations, base *Result) bool {
	if base == nil || base.arr == nil || base.evals == nil || base.loads == nil {
		return false
	}
	if len(base.evals) != len(g.Netlist.Gates) || len(base.arr) != len(g.netNames) {
		return false // baseline from a different graph
	}
	if ann["*"] != nil || base.ann["*"] != nil {
		return false // blanket default touches every gate: cone is the chip
	}
	// Arrival-relevant boundary conditions must match; required-time knobs
	// (ClockPS, SetupPS, KPaths) are always recomputed and may differ.
	if cfg.InputSlewPS != base.cfg.InputSlewPS || cfg.PrimaryLoadFF != base.cfg.PrimaryLoadFF {
		return false
	}
	return wireLoadsEqual(cfg.WireLoads, base.cfg.WireLoads)
}

func (g *Graph) anyInputDirty(gi int, dirtyNet []bool) bool {
	for _, pn := range g.inputs[gi] {
		if dirtyNet[pn.idx] {
			return true
		}
	}
	return false
}

// evalEqual reports whether two electrical views are bit-identical in
// every field STA reads.
func evalEqual(a, b timinglib.Eval) bool {
	if a.IRiseUA != b.IRiseUA || a.IFallUA != b.IFallUA ||
		a.RcRiseOhm != b.RcRiseOhm || a.RcFallOhm != b.RcFallOhm ||
		a.LeakNW != b.LeakNW {
		return false
	}
	return cinEqual(a.CinFF, b.CinFF)
}

func cinEqual(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for pin, v := range a {
		if w, ok := b[pin]; !ok || w != v {
			return false
		}
	}
	return true
}

// arrivalEqual compares every field downstream computation reads,
// including the backtrace predecessors.
func arrivalEqual(a, b *arrival) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.atR == b.atR && a.atF == b.atF &&
		a.slewR == b.slewR && a.slewF == b.slewF &&
		a.fromNetR == b.fromNetR && a.fromNetF == b.fromNetF &&
		a.fromRiseR == b.fromRiseR && a.fromRiseF == b.fromRiseF &&
		a.valid == b.valid
}

// wireLoadsEqual compares two wire-load maps entry for entry.
func wireLoadsEqual(a, b map[string]float64) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for net, v := range a {
		if w, ok := b[net]; !ok || w != v {
			return false
		}
	}
	return true
}
