package sta

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"postopc/internal/netlist"
	"postopc/internal/obs"
	"postopc/internal/timinglib"
)

// bitsEq compares floats bit-for-bit: the incremental contract is byte
// identity, not approximate equality.
func bitsEq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// requireResultsIdentical asserts two Results are byte-identical in every
// exported field.
func requireResultsIdentical(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if !bitsEq(want.WNS, got.WNS) || !bitsEq(want.TNS, got.TNS) || !bitsEq(want.LeakNW, got.LeakNW) {
		t.Fatalf("%s: WNS/TNS/Leak diverge: (%v %v %v) vs (%v %v %v)",
			label, want.WNS, want.TNS, want.LeakNW, got.WNS, got.TNS, got.LeakNW)
	}
	if len(want.Endpoints) != len(got.Endpoints) {
		t.Fatalf("%s: endpoint count %d vs %d", label, len(want.Endpoints), len(got.Endpoints))
	}
	for i := range want.Endpoints {
		w, g := want.Endpoints[i], got.Endpoints[i]
		if w.Name != g.Name || w.Net != g.Net || w.Rise != g.Rise ||
			!bitsEq(w.RequiredPS, g.RequiredPS) || !bitsEq(w.ArrivalPS, g.ArrivalPS) ||
			!bitsEq(w.SlackPS, g.SlackPS) {
			t.Fatalf("%s: endpoint %d diverges: %+v vs %+v", label, i, w, g)
		}
	}
	if len(want.Paths) != len(got.Paths) {
		t.Fatalf("%s: path count %d vs %d", label, len(want.Paths), len(got.Paths))
	}
	for i := range want.Paths {
		w, g := want.Paths[i], got.Paths[i]
		if w.Endpoint != g.Endpoint || !bitsEq(w.SlackPS, g.SlackPS) || !bitsEq(w.ArrivalPS, g.ArrivalPS) {
			t.Fatalf("%s: path %d header diverges: %+v vs %+v", label, i, w, g)
		}
		if len(w.Points) != len(g.Points) {
			t.Fatalf("%s: path %d point count %d vs %d", label, i, len(w.Points), len(g.Points))
		}
		for j := range w.Points {
			if w.Points[j] != g.Points[j] {
				t.Fatalf("%s: path %d point %d: %+v vs %+v", label, i, j, w.Points[j], g.Points[j])
			}
		}
	}
}

func buildGraph(t *testing.T, n *netlist.Netlist) *Graph {
	t.Helper()
	lib, tl := env(t)
	g, err := Build(n, lib, tl)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// dffPipe is a small mixed design: two flop stages around combinational
// logic, so incremental re-analysis covers flop launch recompute too.
func dffPipe() *netlist.Netlist {
	n := &netlist.Netlist{Name: "pipe", Inputs: []string{"din", "clk"}}
	n.AddGate("f1", "DFF_X1", map[string]string{"D": "din", "CK": "clk", "Q": "q1"})
	n.AddGate("g1", "INV_X1", map[string]string{"A": "q1", "Y": "n1"})
	n.AddGate("g2", "NAND2_X1", map[string]string{"A": "n1", "B": "q1", "Y": "n2"})
	n.AddGate("f2", "DFF_X1", map[string]string{"D": "n2", "CK": "clk", "Q": "q2"})
	n.AddGate("g3", "INV_X1", map[string]string{"A": "q2", "Y": "out"})
	n.Outputs = []string{"out"}
	return n
}

// TestIncrementalMatchesFull drives AnalyzeIncremental through a series of
// annotation deltas on several designs and asserts byte identity with a
// fresh full Analyze at every step, chaining each incremental result as the
// next baseline.
func TestIncrementalMatchesFull(t *testing.T) {
	designs := []struct {
		name string
		n    *netlist.Netlist
		anng func(n *netlist.Netlist) []Annotations // successive annotation sets
	}{
		{
			name: "adder/subset",
			n:    netlist.RippleCarryAdder(8),
			anng: func(n *netlist.Netlist) []Annotations {
				g0, g1 := n.Gates[0].Name, n.Gates[len(n.Gates)/2].Name
				return []Annotations{
					{g0: timinglib.Uniform(96)},
					{g0: timinglib.Uniform(96), g1: timinglib.Uniform(84)},
					{g1: timinglib.Uniform(84)}, // entry removed
					{g1: timinglib.Uniform(84)}, // no-op: identical evals
					nil,                         // back to drawn
				}
			},
		},
		{
			name: "pipe/seq",
			n:    dffPipe(),
			anng: func(*netlist.Netlist) []Annotations {
				return []Annotations{
					{"f1": timinglib.Uniform(88)}, // launch flop
					{"f1": timinglib.Uniform(88), "g2": timinglib.Uniform(97)},
					{"g3": timinglib.Uniform(92)}, // post-capture logic only
				}
			},
		},
		{
			name: "datapath/walls",
			n:    netlist.Datapath(6, 5, 11),
			anng: func(n *netlist.Netlist) []Annotations {
				g0, g1 := n.Gates[1].Name, n.Gates[len(n.Gates)-2].Name
				return []Annotations{
					{g0: timinglib.Uniform(95)},
					{g0: timinglib.Uniform(95), g1: timinglib.Uniform(86)},
				}
			},
		},
	}
	for _, d := range designs {
		t.Run(d.name, func(t *testing.T) {
			g := buildGraph(t, d.n)
			cfg := DefaultConfig(2500)
			cfg.KPaths = 4
			base, err := g.Analyze(cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			prev := base
			for i, ann := range d.anng(d.n) {
				full, err := g.Analyze(cfg, ann)
				if err != nil {
					t.Fatal(err)
				}
				incr, err := g.AnalyzeIncremental(cfg, ann, prev)
				if err != nil {
					t.Fatal(err)
				}
				requireResultsIdentical(t, fmt.Sprintf("step %d (from prev)", i), full, incr)
				// Also seed from the original baseline, not just the chain.
				incr2, err := g.AnalyzeIncremental(cfg, ann, base)
				if err != nil {
					t.Fatal(err)
				}
				requireResultsIdentical(t, fmt.Sprintf("step %d (from base)", i), full, incr2)
				prev = incr
			}
		})
	}
}

// TestIncrementalSharesCleanArrivals asserts the engine really is
// incremental: arrivals outside the dirty cone are the baseline's structs,
// not recomputed copies.
func TestIncrementalSharesCleanArrivals(t *testing.T) {
	n := netlist.Datapath(6, 5, 11)
	g := buildGraph(t, n)
	cfg := DefaultConfig(2500)
	base, err := g.Analyze(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Annotate one early gate; most chains' nets must stay untouched.
	incr, err := g.AnalyzeIncremental(cfg, Annotations{n.Gates[1].Name: timinglib.Uniform(95)}, base)
	if err != nil {
		t.Fatal(err)
	}
	shared, total := 0, 0
	for ni, a := range base.arr {
		if a == nil {
			continue
		}
		total++
		if incr.arr[ni] == a {
			shared++
		}
	}
	if shared == 0 || shared == total {
		t.Fatalf("expected partial sharing, got %d/%d shared", shared, total)
	}
	// Conservative floor: at most one chain (plus slack) is dirty.
	if shared < total/2 {
		t.Fatalf("dirty cone too large: only %d/%d arrivals shared", shared, total)
	}
}

// TestIncrementalFallsBackToFull covers the baselines an incremental
// analysis must refuse: wrong boundary conditions, blanket annotations, nil
// or foreign baselines. In every case the result must still be
// byte-identical to a full Analyze.
func TestIncrementalFallsBackToFull(t *testing.T) {
	n := netlist.RippleCarryAdder(4)
	g := buildGraph(t, n)
	cfg := DefaultConfig(2500)
	base, err := g.Analyze(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ann := Annotations{n.Gates[2].Name: timinglib.Uniform(94)}

	cases := []struct {
		name string
		cfg  Config
		ann  Annotations
		base *Result
		ok   bool // incrementalOK expectation
	}{
		{"nil baseline", cfg, ann, nil, false},
		{"blanket annotation", cfg, Annotations{"*": timinglib.Uniform(94)}, base, false},
		{"slew changed", func() Config { c := cfg; c.InputSlewPS = cfg.InputSlewPS * 2; return c }(), ann, base, false},
		{"load changed", func() Config { c := cfg; c.PrimaryLoadFF += 1; return c }(), ann, base, false},
		{"wire loads added", func() Config { c := cfg; c.WireLoads = map[string]float64{"s0": 0.5}; return c }(), ann, base, false},
		{"clock changed is fine", func() Config { c := cfg; c.ClockPS = 9000; return c }(), ann, base, true},
		{"kpaths changed is fine", func() Config { c := cfg; c.KPaths = 2; return c }(), ann, base, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := g.incrementalOK(tc.cfg, tc.ann, tc.base); got != tc.ok {
				t.Fatalf("incrementalOK = %v, want %v", got, tc.ok)
			}
			full, err := g.Analyze(tc.cfg, tc.ann)
			if err != nil {
				t.Fatal(err)
			}
			incr, err := g.AnalyzeIncremental(tc.cfg, tc.ann, tc.base)
			if err != nil {
				t.Fatal(err)
			}
			requireResultsIdentical(t, tc.name, full, incr)
		})
	}
}

// TestIncrementalBaselineImmutable locks the retention contract: running an
// incremental analysis must not disturb the baseline's reported numbers.
func TestIncrementalBaselineImmutable(t *testing.T) {
	n := dffPipe()
	g := buildGraph(t, n)
	cfg := DefaultConfig(1500)
	base, err := g.Analyze(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	again, err := g.Analyze(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AnalyzeIncremental(cfg, Annotations{"g2": timinglib.Uniform(85)}, base); err != nil {
		t.Fatal(err)
	}
	requireResultsIdentical(t, "baseline after incremental", again, base)
}

// TestMultiCornerDeterminism runs the same corner grid at several worker
// counts, full and incremental, and demands a byte-identical merged view.
func TestMultiCornerDeterminism(t *testing.T) {
	n := netlist.Datapath(6, 5, 11)
	g := buildGraph(t, n)
	cfg := DefaultConfig(2500)
	ga, gb, gc, gd := n.Gates[1].Name, n.Gates[5].Name, n.Gates[9].Name, n.Gates[len(n.Gates)-3].Name
	corners := []CornerSpec{
		{Name: "nominal", Ann: nil},
		{Name: "slow", Ann: Annotations{ga: timinglib.Uniform(99), gb: timinglib.Uniform(98)}},
		{Name: "fast", Ann: Annotations{ga: timinglib.Uniform(85)}},
		{Name: "mixed", Ann: Annotations{gc: timinglib.Uniform(96), gd: timinglib.Uniform(88)}},
	}
	ref, err := g.MultiCorner(cfg, corners, MultiCornerOptions{Workers: 1, Full: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		for _, full := range []bool{false, true} {
			got, err := g.MultiCorner(cfg, corners, MultiCornerOptions{
				Workers: workers, Full: full, Obs: obs.NewSink(),
			})
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("workers=%d full=%v", workers, full)
			if !bitsEq(ref.WNS, got.WNS) || !bitsEq(ref.TNS, got.TNS) {
				t.Fatalf("%s: WNS/TNS diverge: (%v %v) vs (%v %v)",
					label, ref.WNS, ref.TNS, got.WNS, got.TNS)
			}
			if len(ref.Merged) != len(got.Merged) {
				t.Fatalf("%s: merged count %d vs %d", label, len(ref.Merged), len(got.Merged))
			}
			for i := range ref.Merged {
				if ref.Merged[i] != got.Merged[i] {
					t.Fatalf("%s: merged[%d]: %+v vs %+v", label, i, ref.Merged[i], got.Merged[i])
				}
			}
			for ci := range corners {
				requireResultsIdentical(t, fmt.Sprintf("%s corner %s", label, corners[ci].Name),
					ref.Corners[ci].Res, got.Corners[ci].Res)
			}
		}
	}
}

// TestMultiCornerMergeSemantics checks worst-slack selection, first-corner
// tie-breaking, TNS accounting and the dominant-corner census.
func TestMultiCornerMergeSemantics(t *testing.T) {
	n := netlist.InverterChain(8)
	g := buildGraph(t, n)
	cfg := DefaultConfig(2000)
	slowAll := Annotations{}
	for _, gt := range n.Gates {
		slowAll[gt.Name] = timinglib.Uniform(100)
	}
	corners := []CornerSpec{
		{Name: "nom", Ann: nil},
		{Name: "nom-dup", Ann: nil}, // identical corner: tie must stay on "nom"
		{Name: "slow", Ann: slowAll},
	}
	mc, err := g.MultiCorner(cfg, corners, MultiCornerOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(mc.Corners) != 3 || len(mc.Merged) != 1 {
		t.Fatalf("shape: %d corners, %d merged", len(mc.Corners), len(mc.Merged))
	}
	slow := mc.Corners[2].Res
	m := mc.Merged[0]
	if m.Corner != "slow" || !bitsEq(m.SlackPS, slow.WNS) {
		t.Fatalf("merged endpoint should be dominated by slow: %+v (slow WNS %v)", m, slow.WNS)
	}
	if !bitsEq(mc.WNS, slow.WNS) {
		t.Fatalf("merged WNS %v, want slow corner's %v", mc.WNS, slow.WNS)
	}
	wantTNS := 0.0
	if m.SlackPS < 0 {
		wantTNS = m.SlackPS
	}
	if !bitsEq(mc.TNS, wantTNS) {
		t.Fatalf("TNS %v, want %v", mc.TNS, wantTNS)
	}
	dom := mc.DominantCorners()
	if dom["slow"] != 1 || dom["nom"] != 0 || dom["nom-dup"] != 0 {
		t.Fatalf("dominant census: %v", dom)
	}

	// Ties between equal corners stick to the earliest in input order.
	tie, err := g.MultiCorner(cfg, corners[:2], MultiCornerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tie.Merged[0].Corner != "nom" {
		t.Fatalf("tie broke to %q, want first corner", tie.Merged[0].Corner)
	}

	if _, err := g.MultiCorner(cfg, nil, MultiCornerOptions{}); err == nil {
		t.Fatal("empty corner set must error")
	}
}

// TestMultiCornerTables smoke-renders the report views.
func TestMultiCornerTables(t *testing.T) {
	n := netlist.RippleCarryAdder(4)
	g := buildGraph(t, n)
	mc, err := g.MultiCorner(DefaultConfig(2500), []CornerSpec{
		{Name: "nom", Ann: nil},
		{Name: "slow", Ann: Annotations{n.Gates[3].Name: timinglib.Uniform(99)}},
	}, MultiCornerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sum := mc.SummaryTable().String()
	if sum == "" || len(mc.MergedTable(3).String()) == 0 {
		t.Fatal("empty report render")
	}
	for _, want := range []string{"nom", "slow", "merged worst"} {
		if !contains(sum, want) {
			t.Fatalf("summary table missing %q:\n%s", want, sum)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestIncrementalTelemetry asserts the incremental counters move and the
// cone histogram sees fewer gates than the full-eval histogram.
func TestIncrementalTelemetry(t *testing.T) {
	n := netlist.Datapath(6, 5, 11)
	lib, tl := env(t)
	g, err := Build(n, lib, tl)
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewSink()
	g.Instrument(sink)
	cfg := DefaultConfig(2500)
	base, err := g.Analyze(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AnalyzeIncremental(cfg, Annotations{n.Gates[1].Name: timinglib.Uniform(95)}, base); err != nil {
		t.Fatal(err)
	}
	snap := sink.Metrics.Snapshot()
	counters := map[string]uint64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters["sta.analyses_total"] != 1 || counters["sta.incremental_analyses_total"] != 1 {
		t.Fatalf("counters: %v", counters)
	}
	var fullSum, coneSum float64
	for _, h := range snap.Histograms {
		switch h.Name {
		case "sta.full_gate_evals":
			fullSum = h.Sum
		case "sta.incremental_cone_gates":
			coneSum = h.Sum
		}
	}
	if fullSum != float64(len(n.Gates)) {
		t.Fatalf("full evals histogram sum %v, want %d", fullSum, len(n.Gates))
	}
	if coneSum <= 0 || coneSum >= fullSum {
		t.Fatalf("cone gates %v should be positive and below full %v", coneSum, fullSum)
	}
}
