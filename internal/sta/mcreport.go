package sta

import (
	"fmt"

	"postopc/internal/report"
)

// SummaryTable renders the per-corner sign-off view: WNS, TNS, leakage and
// the number of endpoints each corner dominates in the merge, followed by
// the merged (process-window worst-case) row.
func (m *MultiCornerResult) SummaryTable() *report.Table {
	t := report.NewTable(fmt.Sprintf("multi-corner STA (%d corners)", len(m.Corners)),
		"corner", "WNS(ps)", "TNS(ps)", "leak(nW)", "dominates")
	dom := m.DominantCorners()
	for _, c := range m.Corners {
		t.AddF(1, c.Name, c.Res.WNS, c.Res.TNS, c.Res.LeakNW, dom[c.Name])
	}
	t.AddF(1, "merged worst", m.WNS, m.TNS, "", len(m.Merged))
	return t
}

// MergedTable renders the worst-case endpoint view (critical first):
// endpoint, merged slack, arrival and required time, and the dominant
// corner. maxRows <= 0 renders every endpoint; otherwise the table is
// truncated with a trailing count row.
func (m *MultiCornerResult) MergedTable(maxRows int) *report.Table {
	t := report.NewTable("process-window worst slack per endpoint",
		"endpoint", "slack(ps)", "arrival(ps)", "required(ps)", "dominant corner")
	for i, ep := range m.Merged {
		if maxRows > 0 && i >= maxRows {
			t.Add("...", fmt.Sprintf("(%d more)", len(m.Merged)-i))
			break
		}
		t.AddF(1, ep.Name, ep.SlackPS, ep.ArrivalPS, ep.RequiredPS, ep.Corner)
	}
	return t
}
