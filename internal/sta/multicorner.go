package sta

import (
	"fmt"
	"sort"

	"postopc/internal/obs"
	"postopc/internal/par"
)

// CornerSpec is one process corner of a multi-corner analysis: a
// human-readable name and the annotation set describing timing at that
// process condition (e.g. VariationModel.Annotations evaluated at one
// (defocus, dose) grid point).
type CornerSpec struct {
	// Name labels the corner in merged reports ("f+80/d0.950").
	Name string
	// Ann are the corner's per-gate annotations.
	Ann Annotations
}

// MultiCornerOptions configure MultiCorner.
type MultiCornerOptions struct {
	// Workers bounds corner-level concurrency (0 = GOMAXPROCS,
	// 1 = serial). Results are identical for any value.
	Workers int
	// Full forces a full Analyze at every corner instead of incremental
	// re-analysis seeded from the first corner's baseline. Results are
	// bit-identical either way; Full exists for ablation benches and as an
	// escape hatch.
	Full bool
	// Obs receives corner fan-out scheduler telemetry (par.* series).
	// Per-analysis telemetry flows through Graph.Instrument as usual.
	Obs *obs.Sink
}

// CornerResult pairs one corner with its full analysis.
type CornerResult struct {
	// Name is the corner's label.
	Name string
	// Res is the corner's complete Result.
	Res *Result
}

// MergedEndpoint is one endpoint's worst case across the corner set.
type MergedEndpoint struct {
	// Name identifies the endpoint (see Endpoint.Name).
	Name string
	// SlackPS is the worst (minimum) slack across corners.
	SlackPS float64
	// ArrivalPS and RequiredPS are taken at the dominant corner.
	ArrivalPS, RequiredPS float64
	// Corner is the dominant corner: the first corner (in input order)
	// attaining the worst slack.
	Corner string
}

// MultiCornerResult is the merged outcome of a multi-corner analysis.
type MultiCornerResult struct {
	// Corners holds the per-corner analyses, in input order.
	Corners []CornerResult
	// Merged holds every endpoint's worst case across corners, sorted by
	// ascending slack then name (critical first).
	Merged []MergedEndpoint
	// WNS is the process-window worst slack (min over Merged).
	WNS float64
	// TNS is the total negative merged slack (ps, <= 0): each endpoint
	// counted once, at its worst corner.
	TNS float64
}

// MultiCorner analyzes the graph at every corner of the set and merges the
// outcome: per-endpoint worst slack across corners with dominant-corner
// tagging, plus the per-corner analyses for drill-down.
//
// The first corner is analyzed in full and seeds incremental re-analysis
// of the rest (see AnalyzeIncremental), fanned out corner-parallel on the
// deterministic worker pool; put the nominal corner first so the deltas
// the incremental engine prunes are smallest. The merged output is
// bit-identical for any worker count and with Full either way.
func (g *Graph) MultiCorner(cfg Config, corners []CornerSpec, opt MultiCornerOptions) (*MultiCornerResult, error) {
	if len(corners) == 0 {
		return nil, fmt.Errorf("sta: MultiCorner needs at least one corner")
	}
	g.cCorners.Add(uint64(len(corners)))
	results := make([]*Result, len(corners))
	base, err := g.Analyze(cfg, corners[0].Ann)
	if err != nil {
		return nil, fmt.Errorf("sta: corner %s: %w", corners[0].Name, err)
	}
	results[0] = base
	rest, restCorners := results[1:], corners[1:]
	err = par.ForEach(len(restCorners), func(i int) error {
		var r *Result
		var err error
		if opt.Full {
			r, err = g.Analyze(cfg, restCorners[i].Ann)
		} else {
			r, err = g.AnalyzeIncremental(cfg, restCorners[i].Ann, base)
		}
		if err != nil {
			return fmt.Errorf("sta: corner %s: %w", restCorners[i].Name, err)
		}
		rest[i] = r
		return nil
	}, par.Workers(opt.Workers), par.Obs(opt.Obs))
	if err != nil {
		return nil, err
	}
	return mergeCorners(corners, results), nil
}

// mergeCorners folds per-corner analyses into the worst-case view. Every
// corner analyzes the same graph under the same boundary conditions, so
// the endpoint sets agree; an endpoint is tagged with the first corner (in
// input order) that attains its minimum slack.
func mergeCorners(corners []CornerSpec, results []*Result) *MultiCornerResult {
	out := &MultiCornerResult{}
	idx := map[string]int{}
	for ci, r := range results {
		out.Corners = append(out.Corners, CornerResult{Name: corners[ci].Name, Res: r})
		for _, ep := range r.Endpoints {
			j, ok := idx[ep.Name]
			if !ok {
				idx[ep.Name] = len(out.Merged)
				out.Merged = append(out.Merged, MergedEndpoint{
					Name: ep.Name, SlackPS: ep.SlackPS,
					ArrivalPS: ep.ArrivalPS, RequiredPS: ep.RequiredPS,
					Corner: corners[ci].Name,
				})
				continue
			}
			if m := &out.Merged[j]; ep.SlackPS < m.SlackPS {
				m.SlackPS, m.ArrivalPS, m.RequiredPS = ep.SlackPS, ep.ArrivalPS, ep.RequiredPS
				m.Corner = corners[ci].Name
			}
		}
	}
	sort.Slice(out.Merged, func(i, j int) bool {
		if out.Merged[i].SlackPS != out.Merged[j].SlackPS {
			return out.Merged[i].SlackPS < out.Merged[j].SlackPS
		}
		return out.Merged[i].Name < out.Merged[j].Name
	})
	out.WNS = out.Merged[0].SlackPS
	for _, m := range out.Merged {
		if m.SlackPS < 0 {
			out.TNS += m.SlackPS
		}
	}
	return out
}

// DominantCorners counts how many endpoints each corner dominates, keyed
// by corner name — the "which corner sets sign-off" summary.
func (m *MultiCornerResult) DominantCorners() map[string]int {
	out := map[string]int{}
	for _, ep := range m.Merged {
		out[ep.Corner]++
	}
	return out
}
