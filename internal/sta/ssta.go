package sta

import (
	"fmt"
	"math"
	"sort"

	"postopc/internal/stdcell"
	"postopc/internal/timinglib"
)

// First-order canonical statistical STA: every delay and arrival is
//
//	value = Mean + SensU·u + SensD·d + ε,  ε ~ N(0, Rand2)
//
// where u is the normalized global focus severity and d the normalized
// dose deviation, shared by every gate on the die (fully correlated), and
// ε is per-arc independent. Sums propagate exactly; max uses Clark's
// moment matching. This is the "more rigorous statistical timing" the
// paper argues realistic CD distributions enable: the litho-systematic
// part stays correlated instead of being root-sum-squared away.
//
// The focus parameter u = (f/F)² follows a scaled χ²₁ when f ~ N(0, F/3):
// E[u] = 1/9, σ(u) = √2/9. Dose d = (dose−1)/Δd with dose ~ N(1, Δd/3)
// gives d ~ N(0, 1/3). Both are mildly non-Gaussian; Clark's formulas
// treat them as Gaussian, which the SSTA-vs-Monte-Carlo bench quantifies.

// Canonical is a first-order statistical quantity.
type Canonical struct {
	// Mean is the value at u = 0, d = 0 (best focus, nominal dose).
	Mean float64
	// SensU is the shift per unit of u (u = 1 at full window defocus).
	SensU float64
	// SensD is the shift per unit of normalized dose deviation.
	SensD float64
	// Rand2 is the variance of the independent part.
	Rand2 float64
}

// SSTAParams are the global-parameter moments.
type SSTAParams struct {
	MeanU, SigmaU float64
	SigmaD        float64
}

// DefaultSSTAParams matches the Monte Carlo sampling (focus ~ N(0, F/3),
// dose ~ N(1, Δd/3)).
func DefaultSSTAParams() SSTAParams {
	return SSTAParams{MeanU: 1.0 / 9, SigmaU: math.Sqrt2 / 9, SigmaD: 1.0 / 3}
}

// MeanTotal is the expectation over the parameter distributions.
func (c Canonical) MeanTotal(p SSTAParams) float64 {
	return c.Mean + c.SensU*p.MeanU
}

// Var is the total variance.
func (c Canonical) Var(p SSTAParams) float64 {
	return sq(c.SensU*p.SigmaU) + sq(c.SensD*p.SigmaD) + c.Rand2
}

// Sigma is the total standard deviation.
func (c Canonical) Sigma(p SSTAParams) float64 { return math.Sqrt(c.Var(p)) }

// Quantile returns the Gaussian-approximated q-quantile (e.g. 0.001 for
// the slow tail of a slack).
func (c Canonical) Quantile(p SSTAParams, z float64) float64 {
	return c.MeanTotal(p) + z*c.Sigma(p)
}

func (c Canonical) add(o Canonical) Canonical {
	return Canonical{
		Mean:  c.Mean + o.Mean,
		SensU: c.SensU + o.SensU,
		SensD: c.SensD + o.SensD,
		Rand2: c.Rand2 + o.Rand2,
	}
}

// cmax is Clark's statistical maximum of two canonicals.
func cmax(a, b Canonical, p SSTAParams) Canonical {
	muA, muB := a.MeanTotal(p), b.MeanTotal(p)
	varA, varB := a.Var(p), b.Var(p)
	cov := a.SensU*b.SensU*sq(p.SigmaU) + a.SensD*b.SensD*sq(p.SigmaD)
	theta2 := varA + varB - 2*cov
	if theta2 < 1e-12 {
		// (Nearly) perfectly correlated: the larger mean dominates.
		if muA >= muB {
			return a
		}
		return b
	}
	theta := math.Sqrt(theta2)
	alpha := (muA - muB) / theta
	t := phiCDF(alpha)
	pdf := phiPDF(alpha)
	mean := muA*t + muB*(1-t) + theta*pdf
	second := (varA+muA*muA)*t + (varB+muB*muB)*(1-t) + (muA+muB)*theta*pdf
	variance := second - mean*mean
	out := Canonical{
		SensU: t*a.SensU + (1-t)*b.SensU,
		SensD: t*a.SensD + (1-t)*b.SensD,
	}
	out.Mean = mean - out.SensU*p.MeanU
	rand2 := variance - sq(out.SensU*p.SigmaU) - sq(out.SensD*p.SigmaD)
	if rand2 > 0 {
		out.Rand2 = rand2
	}
	return out
}

func phiPDF(x float64) float64 { return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi) }
func phiCDF(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }

func sq(v float64) float64 { return v * v }

// CanonicalArcs supplies the statistical delay of every arc. The flow
// builds this from the per-gate variation model; loadFF and inSlewPS are
// the deterministic (nominal) load and slew at the arc.
type CanonicalArcs interface {
	// Arc returns the arc delay canonical and the nominal output slew.
	Arc(gate string, outRise bool, loadFF, inSlewPS float64) (Canonical, float64)
	// Launch returns the clk->Q canonical for a sequential cell.
	Launch(gate string, outRise bool, loadFF, inSlewPS float64) (Canonical, float64)
}

// SSTAEndpoint is one endpoint's statistical slack.
type SSTAEndpoint struct {
	// Name as in the deterministic analysis.
	Name string
	// Slack is the canonical slack (required − arrival).
	Slack Canonical
}

// SSTAResult is the statistical analysis outcome.
type SSTAResult struct {
	// Endpoints sorted by ascending mean slack.
	Endpoints []SSTAEndpoint
	// WNS is the canonical worst slack (statistical min over endpoints).
	WNS Canonical
	// Params echoes the parameter moments used.
	Params SSTAParams
}

// AnalyzeSSTA propagates canonical arrivals through the graph. Loads and
// slews are frozen at their nominal values (the standard first-order SSTA
// simplification); unateness and topology follow the deterministic engine.
func (g *Graph) AnalyzeSSTA(cfg Config, params SSTAParams, arcs CanonicalArcs) (*SSTAResult, error) {
	if arcs == nil {
		return nil, fmt.Errorf("sta: SSTA needs a CanonicalArcs model")
	}
	n := g.Netlist
	// Net loads from the drawn evaluation (input caps are annotation-
	// independent in this library). netLoads applies the WireLoads
	// partial-map contract: nets absent from a non-nil map fall back to
	// the flat per-gate-sink CWireFF instead of zero wire capacitance.
	nomEvals := make([]timinglib.Eval, len(n.Gates))
	for gi := range n.Gates {
		ev, err := g.TL.Evaluate(g.cells[gi], nil)
		if err != nil {
			return nil, err
		}
		nomEvals[gi] = ev
	}
	loads := g.netLoads(cfg, nomEvals)

	type cArr struct {
		r, f           Canonical
		slewR, slewF   float64
		validR, validF bool
	}
	arr := map[string]*cArr{}
	for _, in := range n.Inputs {
		arr[in] = &cArr{slewR: cfg.InputSlewPS, slewF: cfg.InputSlewPS, validR: true, validF: true}
	}
	for gi, gate := range n.Gates {
		if g.cells[gi].Kind != stdcell.Seq {
			continue
		}
		qNet, ok := gate.Conn[g.cells[gi].Output]
		if !ok {
			continue
		}
		cR, sR := arcs.Launch(gate.Name, true, loads[g.netIdx[qNet]], cfg.InputSlewPS)
		cF, sF := arcs.Launch(gate.Name, false, loads[g.netIdx[qNet]], cfg.InputSlewPS)
		arr[qNet] = &cArr{r: cR, f: cF, slewR: sR, slewF: sF, validR: true, validF: true}
	}

	for _, gi := range g.topo {
		gate := n.Gates[gi]
		cell := g.cells[gi]
		outNet := gate.Conn[cell.Output]
		load := loads[g.netIdx[outNet]]
		out := &cArr{}
		merge := func(rise bool, c Canonical, slew float64) {
			if rise {
				if !out.validR {
					out.r, out.slewR, out.validR = c, slew, true
				} else {
					out.r = cmax(out.r, c, params)
					if slew > out.slewR {
						out.slewR = slew
					}
				}
			} else {
				if !out.validF {
					out.f, out.slewF, out.validF = c, slew, true
				} else {
					out.f = cmax(out.f, c, params)
					if slew > out.slewF {
						out.slewF = slew
					}
				}
			}
		}
		for pin, net := range gate.Conn {
			if pin == cell.Output {
				continue
			}
			in := arr[net]
			if in == nil {
				continue
			}
			consider := func(inRise bool, inArr Canonical, inSlew float64, valid bool) {
				if !valid {
					return
				}
				for _, outRise := range outSenses(cell.Unate, inRise) {
					d, os := arcs.Arc(gate.Name, outRise, load, inSlew)
					merge(outRise, inArr.add(d), os)
				}
			}
			consider(true, in.r, in.slewR, in.validR)
			consider(false, in.f, in.slewF, in.validF)
		}
		arr[outNet] = out
	}

	res := &SSTAResult{Params: params}
	neg := func(c Canonical) Canonical {
		return Canonical{Mean: -c.Mean, SensU: -c.SensU, SensD: -c.SensD, Rand2: c.Rand2}
	}
	addEndpoint := func(name, net string, required float64) {
		a := arr[net]
		if a == nil || (!a.validR && !a.validF) {
			return
		}
		var worst Canonical
		switch {
		case a.validR && a.validF:
			worst = cmax(a.r, a.f, params)
		case a.validR:
			worst = a.r
		default:
			worst = a.f
		}
		slack := Canonical{Mean: required}.add(neg(worst))
		res.Endpoints = append(res.Endpoints, SSTAEndpoint{Name: name, Slack: slack})
	}
	for _, po := range n.Outputs {
		addEndpoint(po, po, cfg.ClockPS)
	}
	for gi, gate := range n.Gates {
		if g.cells[gi].Kind != stdcell.Seq {
			continue
		}
		if dNet, ok := gate.Conn["D"]; ok {
			addEndpoint(gate.Name+"/D", dNet, cfg.ClockPS-cfg.SetupPS)
		}
	}
	if len(res.Endpoints) == 0 {
		return nil, fmt.Errorf("sta: SSTA found no constrained endpoints")
	}
	sort.Slice(res.Endpoints, func(i, j int) bool {
		return res.Endpoints[i].Slack.MeanTotal(params) < res.Endpoints[j].Slack.MeanTotal(params)
	})
	// Statistical WNS: min over endpoint slacks = −max(−slacks).
	worstNeg := neg(res.Endpoints[0].Slack)
	for _, ep := range res.Endpoints[1:] {
		worstNeg = cmax(worstNeg, neg(ep.Slack), params)
	}
	res.WNS = neg(worstNeg)
	return res, nil
}
