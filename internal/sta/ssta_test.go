package sta

import (
	"math"
	"testing"

	"postopc/internal/netlist"
)

func TestCanonicalAlgebra(t *testing.T) {
	p := DefaultSSTAParams()
	a := Canonical{Mean: 100, SensU: 10, SensD: 4, Rand2: 9}
	b := Canonical{Mean: 50, SensU: -5, SensD: 2, Rand2: 4}
	s := a.add(b)
	if s.Mean != 150 || s.SensU != 5 || s.SensD != 6 || s.Rand2 != 13 {
		t.Fatalf("add = %+v", s)
	}
	// Total mean includes the focus-severity mean.
	if got := a.MeanTotal(p); math.Abs(got-(100+10.0/9)) > 1e-12 {
		t.Fatalf("mean total = %g", got)
	}
	if a.Sigma(p) <= 0 {
		t.Fatal("sigma must be positive")
	}
	// Quantiles are monotone in z.
	if !(a.Quantile(p, -3) < a.Quantile(p, 0) && a.Quantile(p, 0) < a.Quantile(p, 3)) {
		t.Fatal("quantiles not monotone")
	}
}

func TestClarkMaxProperties(t *testing.T) {
	p := DefaultSSTAParams()
	a := Canonical{Mean: 100, SensU: 8, Rand2: 25}
	b := Canonical{Mean: 90, SensU: 8, Rand2: 25}
	m := cmax(a, b, p)
	// The max mean is at least each operand's mean.
	if m.MeanTotal(p) < a.MeanTotal(p)-1e-9 || m.MeanTotal(p) < b.MeanTotal(p)-1e-9 {
		t.Fatalf("max mean %.3f below operands", m.MeanTotal(p))
	}
	// Dominant operand: max(a, much-smaller) ≈ a.
	tiny := Canonical{Mean: 1}
	md := cmax(a, tiny, p)
	if math.Abs(md.MeanTotal(p)-a.MeanTotal(p)) > 0.01 {
		t.Fatalf("dominated max drifted: %.3f vs %.3f", md.MeanTotal(p), a.MeanTotal(p))
	}
	// Symmetric: max(a,b) == max(b,a) within numerics.
	m2 := cmax(b, a, p)
	if math.Abs(m.MeanTotal(p)-m2.MeanTotal(p)) > 1e-9 ||
		math.Abs(m.Sigma(p)-m2.Sigma(p)) > 1e-9 {
		t.Fatal("Clark max not symmetric")
	}
	// Perfectly correlated equal-sensitivity case degenerates to the
	// larger mean.
	c1 := Canonical{Mean: 10, SensU: 5}
	c2 := Canonical{Mean: 12, SensU: 5}
	if got := cmax(c1, c2, p); got != c2 {
		t.Fatalf("correlated max = %+v", got)
	}
}

func TestPhiHelpers(t *testing.T) {
	if math.Abs(phiCDF(0)-0.5) > 1e-12 {
		t.Fatal("Φ(0)")
	}
	if math.Abs(phiCDF(3)+phiCDF(-3)-1) > 1e-12 {
		t.Fatal("Φ symmetry")
	}
	if math.Abs(phiPDF(0)-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Fatal("φ(0)")
	}
}

// constArcs is a trivial arc model for propagation tests: every arc has
// delay 10 with SensU 2 and unit random variance.
type constArcs struct{}

func (constArcs) Arc(string, bool, float64, float64) (Canonical, float64) {
	return Canonical{Mean: 10, SensU: 2, Rand2: 1}, 20
}
func (constArcs) Launch(string, bool, float64, float64) (Canonical, float64) {
	return Canonical{Mean: 30, SensU: 3, Rand2: 1}, 20
}

func TestAnalyzeSSTAChain(t *testing.T) {
	lib, tl := env(t)
	n := chainNetlist(6)
	g, err := Build(n, lib, tl)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultSSTAParams()
	res, err := g.AnalyzeSSTA(DefaultConfig(1000), p, constArcs{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Endpoints) != 1 {
		t.Fatalf("endpoints = %d", len(res.Endpoints))
	}
	sl := res.Endpoints[0].Slack
	// A 6-stage chain of constant arcs: arrival = 6 canonical arcs summed,
	// then the endpoint takes Clark's max of the (equal-mean) rise and
	// fall arrivals, whose random parts are independent: the max gains
	// θ·φ(0) with θ² = 2·Rand2.
	arrMean := 6*10 + 6*2*p.MeanU
	theta := math.Sqrt(2 * 6.0)
	wantMean := 1000 - (arrMean + theta*phiPDF(0))
	if math.Abs(sl.MeanTotal(p)-wantMean) > 1e-9 {
		t.Fatalf("slack mean %.3f, want %.3f", sl.MeanTotal(p), wantMean)
	}
	// Sensitivities accumulate fully correlated.
	if sl.SensU != -12 {
		t.Fatalf("SensU = %g", sl.SensU)
	}
	// The independent part stays in a plausible band around 6.
	if sl.Rand2 < 2 || sl.Rand2 > 8 {
		t.Fatalf("Rand2 = %g", sl.Rand2)
	}
	if res.WNS.MeanTotal(p) != sl.MeanTotal(p) {
		t.Fatal("single-endpoint WNS must equal its slack")
	}
}

func TestAnalyzeSSTAErrors(t *testing.T) {
	lib, tl := env(t)
	g, err := Build(chainNetlist(2), lib, tl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AnalyzeSSTA(DefaultConfig(1000), DefaultSSTAParams(), nil); err == nil {
		t.Fatal("nil arc model accepted")
	}
}

func chainNetlist(k int) *netlist.Netlist { return netlist.InverterChain(k) }
