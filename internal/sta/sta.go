// Package sta is a graph-based static timing analyzer over the generated
// cell library: levelized arrival propagation with rise/fall senses and
// slew, endpoint slacks against an ideal clock, per-endpoint critical-path
// backtrace, and the rank-comparison statistics the paper's speed-path
// reordering analysis needs.
//
// Annotations enter exclusively through timinglib.Annotator functions per
// gate instance — the same interface the post-OPC flow uses to feed
// silicon-calibrated effective lengths back into timing.
package sta

import (
	"fmt"
	"math"
	"sort"

	"postopc/internal/netlist"
	"postopc/internal/obs"
	"postopc/internal/stdcell"
	"postopc/internal/timinglib"
)

// Config are the analysis boundary conditions.
type Config struct {
	// ClockPS is the cycle time: required arrival at every endpoint.
	ClockPS float64
	// InputSlewPS is the transition at primary inputs and launching flops.
	InputSlewPS float64
	// PrimaryLoadFF is the load on primary outputs.
	PrimaryLoadFF float64
	// SetupPS is the flip-flop setup time (subtracted from the required
	// time at D endpoints).
	SetupPS float64
	// KPaths is how many worst paths to report (default 10).
	KPaths int
	// WireLoads optionally supplies per-net wire capacitance (fF), e.g.
	// placement-derived HPWL estimates (see flow.WireLoads). When nil,
	// the flat per-sink CWireFF of the kit is used instead.
	//
	// Contract for partial maps: a net absent from a non-nil map is NOT
	// timed at zero wire capacitance — it falls back to the same flat
	// per-gate-sink CWireFF a nil map would use. Supplying an explicit
	// zero entry is the way to declare a net wire-free.
	WireLoads map[string]float64
}

// DefaultConfig returns sensible N90 boundary conditions (the clock must
// still be chosen per design).
func DefaultConfig(clockPS float64) Config {
	return Config{ClockPS: clockPS, InputSlewPS: 30, PrimaryLoadFF: 5, SetupPS: 25, KPaths: 10}
}

// Graph is the timing graph of one netlist, reusable across annotations.
type Graph struct {
	Netlist *netlist.Netlist
	Lib     *stdcell.Library
	TL      *timinglib.Lib

	conns  map[string]*netlist.Conn
	cells  []*stdcell.Info // per gate
	topo   []int           // combinational gates in topological order
	byName map[string]int  // gate instance name -> gate index
	// inputs lists each gate's input (pin, net) pairs sorted by pin name.
	// Propagation walks this fixed order instead of ranging over the Conn
	// map, so arrival ties between input pins break deterministically.
	inputs [][]pinNet

	// Dense net numbering: every net gets an index into slice-shaped
	// per-net state (arrivals, loads), assigned in sorted-name order at
	// Build. The hot loops index slices instead of hashing net names, and
	// an incremental baseline copy is a single memmove.
	netIdx   map[string]int
	netNames []string
	connOf   []*netlist.Conn // conns re-indexed by net index
	outIdx   []int           // per gate: output net index, -1 if unconnected

	// Telemetry handles (see Instrument); nil on an uninstrumented graph.
	// Write-only: telemetry never alters an analysis result.
	cAnalyses  *obs.Counter
	cIncr      *obs.Counter
	cCorners   *obs.Counter
	hAnalyze   *obs.Histogram
	hArrival   *obs.Histogram
	hFullEvals *obs.Histogram
	hIncrEvals *obs.Histogram
	hConeGates *obs.Histogram
}

// Instrument attaches telemetry to the graph: an analyses counter
// ("sta.analyses_total"), whole-Analyze latency ("sta.analyze_ns"), the
// arrival-propagation inner phase ("sta.arrival_propagation_ns"), the
// multi-corner counters ("sta.corners_total",
// "sta.incremental_analyses_total") and the full-vs-incremental gate-eval
// histograms ("sta.full_gate_evals", "sta.incremental_gate_evals",
// "sta.incremental_cone_gates"). Call before the graph is shared between
// workers (Monte Carlo and MultiCorner run Analyze concurrently); a nil or
// disabled sink is a no-op.
func (g *Graph) Instrument(sink *obs.Sink) {
	g.cAnalyses = sink.Counter("sta.analyses_total")
	g.cIncr = sink.Counter("sta.incremental_analyses_total")
	g.cCorners = sink.Counter("sta.corners_total")
	g.hAnalyze = sink.LatencyHistogram("sta.analyze_ns")
	g.hArrival = sink.LatencyHistogram("sta.arrival_propagation_ns")
	g.hFullEvals = sink.CountHistogram("sta.full_gate_evals")
	g.hIncrEvals = sink.CountHistogram("sta.incremental_gate_evals")
	g.hConeGates = sink.CountHistogram("sta.incremental_cone_gates")
}

// Build constructs and levelizes the timing graph.
func Build(n *netlist.Netlist, lib *stdcell.Library, tl *timinglib.Lib) (*Graph, error) {
	conns, err := n.Connectivity(lib)
	if err != nil {
		return nil, err
	}
	g := &Graph{Netlist: n, Lib: lib, TL: tl, conns: conns}
	g.netNames = make([]string, 0, len(conns))
	for net := range conns {
		g.netNames = append(g.netNames, net)
	}
	sort.Strings(g.netNames)
	g.netIdx = make(map[string]int, len(g.netNames))
	g.connOf = make([]*netlist.Conn, len(g.netNames))
	for i, net := range g.netNames {
		g.netIdx[net] = i
		g.connOf[i] = conns[net]
	}
	g.cells = make([]*stdcell.Info, len(n.Gates))
	g.byName = make(map[string]int, len(n.Gates))
	g.inputs = make([][]pinNet, len(n.Gates))
	g.outIdx = make([]int, len(n.Gates))
	for i, gate := range n.Gates {
		info, err := lib.Get(gate.Cell)
		if err != nil {
			return nil, err
		}
		g.cells[i] = info
		g.byName[gate.Name] = i
		g.outIdx[i] = -1
		for pin, net := range gate.Conn {
			ni, ok := g.netIdx[net]
			if !ok {
				return nil, fmt.Errorf("sta: gate %s pin %s: net %s missing from connectivity", gate.Name, pin, net)
			}
			if pin == info.Output {
				g.outIdx[i] = ni
				continue
			}
			g.inputs[i] = append(g.inputs[i], pinNet{pin: pin, net: net, idx: ni})
		}
		ins := g.inputs[i]
		sort.Slice(ins, func(a, b int) bool { return ins[a].pin < ins[b].pin })
	}
	if err := g.levelize(); err != nil {
		return nil, err
	}
	return g, nil
}

// pinNet is one input connection of a gate.
type pinNet struct {
	pin, net string
	idx      int // net index (see Graph.netIdx)
}

// levelize topologically orders the combinational gates. Sequential cells
// are sources/sinks and never enter the order.
func (g *Graph) levelize() error {
	n := g.Netlist
	indeg := make([]int, len(n.Gates))
	// For each combinational gate, count input nets driven by other
	// combinational gates.
	dependents := map[int][]int{} // driver gate -> dependent gates
	for gi, gate := range n.Gates {
		if g.cells[gi].Kind != stdcell.Comb {
			continue
		}
		for pin, net := range gate.Conn {
			if pin == g.cells[gi].Output {
				continue
			}
			c := g.conns[net]
			if c.Driver.Gate >= 0 && g.cells[c.Driver.Gate].Kind == stdcell.Comb {
				indeg[gi]++
				dependents[c.Driver.Gate] = append(dependents[c.Driver.Gate], gi)
			}
		}
	}
	var queue []int
	for gi := range n.Gates {
		if g.cells[gi].Kind == stdcell.Comb && indeg[gi] == 0 {
			queue = append(queue, gi)
		}
	}
	sort.Ints(queue)
	for len(queue) > 0 {
		gi := queue[0]
		queue = queue[1:]
		g.topo = append(g.topo, gi)
		deps := dependents[gi]
		sort.Ints(deps)
		for _, d := range deps {
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	combCount := 0
	for gi := range n.Gates {
		if g.cells[gi].Kind == stdcell.Comb {
			combCount++
		}
	}
	if len(g.topo) != combCount {
		return fmt.Errorf("sta: combinational loop detected (%d of %d gates ordered)",
			len(g.topo), combCount)
	}
	return nil
}

// Annotations maps gate instance name -> effective-length annotator.
// Missing entries analyze at drawn length; the special key "*" supplies a
// default annotator for gates without a specific entry (e.g. a blanket
// guardband).
type Annotations map[string]timinglib.Annotator

// arrival is the timing state of one net.
type arrival struct {
	atR, atF     float64 // arrival times (ps)
	slewR, slewF float64
	// backtrace: predecessor net index and sense through the driving gate
	// (-1 at startpoints).
	fromNetR, fromNetF   int
	fromRiseR, fromRiseF bool
	valid                bool
}

// Endpoint is a timing endpoint: a primary output or a flop D pin.
type Endpoint struct {
	// Name identifies the endpoint ("net" for POs, "gate/D" for flops).
	Name string
	// Net is the endpoint's net.
	Net string
	// RequiredPS and ArrivalPS give SlackPS = Required − Arrival.
	RequiredPS, ArrivalPS, SlackPS float64
	// Rise is the worst-arrival sense.
	Rise bool
}

// Result of one analysis.
type Result struct {
	// Endpoints sorted by ascending slack (critical first).
	Endpoints []Endpoint
	// WNS is the worst negative-or-not slack (ps).
	WNS float64
	// TNS is the total negative slack (ps, ≤ 0).
	TNS float64
	// Paths are the K worst per-endpoint critical paths.
	Paths []Path
	// LeakNW is the summed cell leakage.
	LeakNW float64

	// Retained analysis state: AnalyzeIncremental seeds from it to
	// recompute only the cone of gates whose annotation changed. Arrivals
	// and loads are net-index-shaped slices (see Graph.netIdx); the arrival
	// structs are immutable once an analysis returns — incremental results
	// share them with their baseline.
	g     *Graph
	arr   []*arrival
	cfg   Config
	ann   Annotations
	evals []timinglib.Eval
	loads []float64
}

// Path is one speed path from a startpoint to an endpoint.
type Path struct {
	// Endpoint name (see Endpoint.Name).
	Endpoint string
	// SlackPS and ArrivalPS of the endpoint.
	SlackPS, ArrivalPS float64
	// Points runs from the startpoint net to the endpoint net.
	Points []PathPoint
}

// PathPoint is one net traversal on a path.
type PathPoint struct {
	// Net is the net name.
	Net string
	// Gate is the driving gate instance ("" at startpoints).
	Gate string
	// Cell is the driving cell name.
	Cell string
	// Rise is the transition sense on this net.
	Rise bool
	// ArrivalPS is the arrival time at this net.
	ArrivalPS float64
}

// Gates returns the distinct driving gate names on the path, in order.
func (p Path) Gates() []string {
	var out []string
	seen := map[string]bool{}
	for _, pt := range p.Points {
		if pt.Gate != "" && !seen[pt.Gate] {
			seen[pt.Gate] = true
			out = append(out, pt.Gate)
		}
	}
	return out
}

// Analyze runs STA under the given annotations.
func (g *Graph) Analyze(cfg Config, ann Annotations) (*Result, error) {
	tA := g.hAnalyze.StartTimer()
	defer g.hAnalyze.ObserveSince(tA)
	g.cAnalyses.Inc()
	if cfg.KPaths <= 0 {
		cfg.KPaths = 10
	}
	n := g.Netlist
	// Evaluate every gate's electrical view.
	evals := make([]timinglib.Eval, len(n.Gates))
	res := &Result{g: g, arr: make([]*arrival, len(g.netNames)), cfg: cfg, ann: ann, evals: evals}
	for gi := range n.Gates {
		ev, err := g.evalGate(gi, ann)
		if err != nil {
			return nil, err
		}
		evals[gi] = ev
	}
	g.hFullEvals.Observe(float64(len(n.Gates)))
	res.LeakNW = sumLeak(evals)
	res.loads = g.netLoads(cfg, evals)

	// Seed arrivals: primary inputs and flop Q outputs.
	for _, in := range n.Inputs {
		if ni, ok := g.netIdx[in]; ok {
			res.arr[ni] = &arrival{atR: 0, atF: 0, slewR: cfg.InputSlewPS, slewF: cfg.InputSlewPS,
				fromNetR: -1, fromNetF: -1, valid: true}
		}
	}
	for gi := range n.Gates {
		if qi, a, ok := g.launchArrival(gi, cfg, evals, res.loads); ok {
			res.arr[qi] = a
		}
	}

	// Propagate through combinational gates in topological order.
	tP := g.hArrival.StartTimer()
	for _, gi := range g.topo {
		oi := g.outIdx[gi]
		if oi < 0 {
			continue // dangling output: nothing downstream to time
		}
		res.arr[oi] = g.propagateGate(gi, evals[gi], res.loads[oi], res.arr)
	}
	g.hArrival.ObserveSince(tP)

	if err := g.finish(res); err != nil {
		return nil, err
	}
	return res, nil
}

// evalGate evaluates one gate's electrical view under an annotation set
// (the gate's own entry, else the "*" default, else drawn).
func (g *Graph) evalGate(gi int, ann Annotations) (timinglib.Eval, error) {
	a := ann[g.Netlist.Gates[gi].Name]
	if a == nil {
		a = ann["*"]
	}
	ev, err := g.TL.Evaluate(g.cells[gi], a)
	if err != nil {
		return ev, fmt.Errorf("sta: gate %s: %w", g.Netlist.Gates[gi].Name, err)
	}
	return ev, nil
}

// sumLeak totals cell leakage in gate-index order (the fixed summation
// order keeps full and incremental results bit-identical).
func sumLeak(evals []timinglib.Eval) float64 {
	var leak float64
	for i := range evals {
		leak += evals[i].LeakNW
	}
	return leak
}

// netLoads computes every net's capacitive load, net-index-shaped.
func (g *Graph) netLoads(cfg Config, evals []timinglib.Eval) []float64 {
	loads := make([]float64, len(g.netNames))
	for ni, c := range g.connOf {
		loads[ni] = g.netLoad(cfg, g.netNames[ni], c, evals)
	}
	return loads
}

// netLoad computes one net's load: sink input-pin caps plus wire
// capacitance — the per-net WireLoads entry when present, the kit's flat
// per-gate-sink CWireFF otherwise. A net absent from a non-nil WireLoads
// map takes the same flat fallback a nil map would (see Config.WireLoads);
// it is never silently timed at zero wire capacitance.
func (g *Graph) netLoad(cfg Config, net string, c *netlist.Conn, evals []timinglib.Eval) float64 {
	var l float64
	gateSinks := 0
	for _, s := range c.Sinks {
		if s.Gate < 0 {
			l += cfg.PrimaryLoadFF
			continue
		}
		l += evals[s.Gate].CinFF[s.Pin]
		if cfg.WireLoads == nil {
			l += g.TL.P.CWireFF
		} else {
			gateSinks++
		}
	}
	if cfg.WireLoads != nil {
		if w, ok := cfg.WireLoads[net]; ok {
			l += w
		} else {
			l += float64(gateSinks) * g.TL.P.CWireFF
		}
	}
	return l
}

// launchArrival computes the clk->Q seed arrival of a sequential gate,
// returning the Q-net index. ok is false for combinational gates and flops
// without a Q connection.
func (g *Graph) launchArrival(gi int, cfg Config, evals []timinglib.Eval, loads []float64) (int, *arrival, bool) {
	if g.cells[gi].Kind != stdcell.Seq {
		return -1, nil, false
	}
	qi := g.outIdx[gi]
	if qi < 0 {
		return -1, nil, false
	}
	dR, sR := g.TL.ArcDelay(evals[gi], true, loads[qi], cfg.InputSlewPS)
	dF, sF := g.TL.ArcDelay(evals[gi], false, loads[qi], cfg.InputSlewPS)
	return qi, &arrival{atR: dR, atF: dF, slewR: sR, slewF: sF, fromNetR: -1, fromNetF: -1, valid: true}, true
}

// propagateGate computes one combinational gate's output arrival from the
// arrivals of its input nets. Input pins are visited in the fixed sorted
// order prepared by Build, so ties break deterministically.
func (g *Graph) propagateGate(gi int, ev timinglib.Eval, load float64, arr []*arrival) *arrival {
	cell := g.cells[gi]
	out := &arrival{atR: math.Inf(-1), atF: math.Inf(-1), fromNetR: -1, fromNetF: -1}
	for _, pn := range g.inputs[gi] {
		in := arr[pn.idx]
		if in == nil || !in.valid {
			continue // input from an unconstrained source
		}
		consider := func(inRise bool, inAT, inSlew float64) {
			for _, outRise := range outSenses(cell.Unate, inRise) {
				d, os := g.TL.ArcDelay(ev, outRise, load, inSlew)
				at := inAT + d
				if outRise && at > out.atR {
					out.atR, out.slewR = at, os
					out.fromNetR, out.fromRiseR = pn.idx, inRise
				} else if !outRise && at > out.atF {
					out.atF, out.slewF = at, os
					out.fromNetF, out.fromRiseF = pn.idx, inRise
				}
			}
		}
		consider(true, in.atR, in.slewR)
		consider(false, in.atF, in.slewF)
	}
	if !math.IsInf(out.atR, -1) || !math.IsInf(out.atF, -1) {
		out.valid = true
	}
	return out
}

// finish derives the endpoint view of a result whose arrival map is
// complete: endpoint collection, the slack sort, WNS/TNS and the K worst
// path backtraces. Shared by Analyze and AnalyzeIncremental so the merged
// outputs are computed identically.
func (g *Graph) finish(res *Result) error {
	n := g.Netlist
	cfg := res.cfg
	addEndpoint := func(name, net string, required float64) {
		ni, ok := g.netIdx[net]
		if !ok {
			return // endpoint net unknown to the graph
		}
		a := res.arr[ni]
		if a == nil || !a.valid {
			return // unconstrained
		}
		ep := Endpoint{Name: name, Net: net, RequiredPS: required}
		if a.atR >= a.atF {
			ep.ArrivalPS, ep.Rise = a.atR, true
		} else {
			ep.ArrivalPS, ep.Rise = a.atF, false
		}
		ep.SlackPS = required - ep.ArrivalPS
		res.Endpoints = append(res.Endpoints, ep)
	}
	for _, po := range n.Outputs {
		addEndpoint(po, po, cfg.ClockPS)
	}
	for gi, gate := range n.Gates {
		if g.cells[gi].Kind != stdcell.Seq {
			continue
		}
		if dNet, ok := gate.Conn["D"]; ok {
			addEndpoint(gate.Name+"/D", dNet, cfg.ClockPS-cfg.SetupPS)
		}
	}
	sort.Slice(res.Endpoints, func(i, j int) bool {
		if res.Endpoints[i].SlackPS != res.Endpoints[j].SlackPS {
			return res.Endpoints[i].SlackPS < res.Endpoints[j].SlackPS
		}
		return res.Endpoints[i].Name < res.Endpoints[j].Name
	})
	if len(res.Endpoints) == 0 {
		return fmt.Errorf("sta: design %s has no constrained endpoints", n.Name)
	}
	res.WNS = res.Endpoints[0].SlackPS
	for _, ep := range res.Endpoints {
		if ep.SlackPS < 0 {
			res.TNS += ep.SlackPS
		}
	}
	// K worst paths (one per endpoint).
	k := cfg.KPaths
	if k > len(res.Endpoints) {
		k = len(res.Endpoints)
	}
	for i := 0; i < k; i++ {
		res.Paths = append(res.Paths, g.backtrace(res, res.Endpoints[i]))
	}
	return nil
}

// outSenses lists the output transitions an input transition can launch.
func outSenses(u stdcell.Unate, inRise bool) []bool {
	switch u {
	case stdcell.Inverting:
		return []bool{!inRise}
	case stdcell.NonInverting:
		return []bool{inRise}
	default:
		return []bool{true, false}
	}
}

// backtrace reconstructs the critical path into an endpoint.
func (g *Graph) backtrace(res *Result, ep Endpoint) Path {
	p := Path{Endpoint: ep.Name, SlackPS: ep.SlackPS, ArrivalPS: ep.ArrivalPS}
	ni, ok := g.netIdx[ep.Net]
	if !ok {
		return p
	}
	rise := ep.Rise
	var rev []PathPoint
	for i := 0; i < len(g.Netlist.Gates)+2; i++ {
		a := res.arr[ni]
		if a == nil {
			break
		}
		pt := PathPoint{Net: g.netNames[ni], Rise: rise}
		if rise {
			pt.ArrivalPS = a.atR
		} else {
			pt.ArrivalPS = a.atF
		}
		c := g.connOf[ni]
		if c != nil && c.Driver.Gate >= 0 {
			pt.Gate = g.Netlist.Gates[c.Driver.Gate].Name
			pt.Cell = g.Netlist.Gates[c.Driver.Gate].Cell
		}
		rev = append(rev, pt)
		var fromNet int
		var fromRise bool
		if rise {
			fromNet, fromRise = a.fromNetR, a.fromRiseR
		} else {
			fromNet, fromRise = a.fromNetF, a.fromRiseF
		}
		if fromNet < 0 {
			break // startpoint (PI or flop Q)
		}
		ni, rise = fromNet, fromRise
	}
	for i := len(rev) - 1; i >= 0; i-- {
		p.Points = append(p.Points, rev[i])
	}
	return p
}

// ArrivalOf exposes a net's worst arrival (for tests and reports).
func (r *Result) ArrivalOf(net string) (ps float64, ok bool) {
	ni, found := r.g.netIdx[net]
	if !found {
		return 0, false
	}
	a := r.arr[ni]
	if a == nil || !a.valid {
		return 0, false
	}
	return math.Max(a.atR, a.atF), true
}

// CriticalGates returns the union of gate names on the k worst paths — the
// paper's "tagged critical gates".
func (r *Result) CriticalGates(k int) []string {
	if k > len(r.Paths) {
		k = len(r.Paths)
	}
	seen := map[string]bool{}
	var out []string
	for _, p := range r.Paths[:k] {
		for _, gname := range p.Gates() {
			if !seen[gname] {
				seen[gname] = true
				out = append(out, gname)
			}
		}
	}
	sort.Strings(out)
	return out
}
