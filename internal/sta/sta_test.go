package sta

import (
	"math"
	"strings"
	"testing"

	"postopc/internal/netlist"
	"postopc/internal/pdk"
	"postopc/internal/stdcell"
	"postopc/internal/timinglib"
)

var (
	testLib *stdcell.Library
	testTL  *timinglib.Lib
)

func env(t *testing.T) (*stdcell.Library, *timinglib.Lib) {
	t.Helper()
	if testLib == nil {
		l, err := stdcell.NewLibrary(pdk.N90())
		if err != nil {
			t.Fatal(err)
		}
		testLib = l
		testTL = timinglib.New(l.PDK)
	}
	return testLib, testTL
}

func analyze(t *testing.T, n *netlist.Netlist, cfg Config, ann Annotations) *Result {
	t.Helper()
	lib, tl := env(t)
	g, err := Build(n, lib, tl)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Analyze(cfg, ann)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestInverterChainTiming(t *testing.T) {
	n := netlist.InverterChain(8)
	res := analyze(t, n, DefaultConfig(2000), nil)
	if len(res.Endpoints) != 1 {
		t.Fatalf("endpoints = %d", len(res.Endpoints))
	}
	ep := res.Endpoints[0]
	if ep.ArrivalPS <= 0 || ep.ArrivalPS > 1000 {
		t.Fatalf("chain arrival = %.1fps implausible", ep.ArrivalPS)
	}
	if math.Abs(ep.SlackPS-(2000-ep.ArrivalPS)) > 1e-9 {
		t.Fatalf("slack arithmetic: %+v", ep)
	}
	if res.WNS != ep.SlackPS {
		t.Fatal("WNS mismatch")
	}
	// The critical path passes through every inverter.
	if len(res.Paths) != 1 {
		t.Fatalf("paths = %d", len(res.Paths))
	}
	gates := res.Paths[0].Gates()
	if len(gates) != 8 {
		t.Fatalf("path gates = %v", gates)
	}
	// Arrivals along the path strictly increase.
	pts := res.Paths[0].Points
	for i := 1; i < len(pts); i++ {
		if pts[i].ArrivalPS <= pts[i-1].ArrivalPS {
			t.Fatalf("non-monotone arrivals at %d: %+v", i, pts)
		}
	}
	// Alternating senses through inverters.
	for i := 1; i < len(pts); i++ {
		if pts[i].Rise == pts[i-1].Rise {
			t.Fatalf("inverter chain must alternate rise/fall")
		}
	}
	if res.LeakNW <= 0 {
		t.Fatal("leakage must be positive")
	}
}

func TestChainLengthScalesDelay(t *testing.T) {
	a := analyze(t, netlist.InverterChain(4), DefaultConfig(5000), nil)
	b := analyze(t, netlist.InverterChain(12), DefaultConfig(5000), nil)
	ra := a.Endpoints[0].ArrivalPS
	rb := b.Endpoints[0].ArrivalPS
	if rb < 2.5*ra || rb > 3.5*ra {
		t.Fatalf("12-stage arrival %.1f vs 4-stage %.1f: want ~3x", rb, ra)
	}
}

func TestAnnotationShiftsTiming(t *testing.T) {
	n := netlist.InverterChain(8)
	base := analyze(t, n, DefaultConfig(2000), nil)
	// All gates at 80nm: faster (shorter channel = more drive) and
	// leakier.
	short := Annotations{}
	long := Annotations{}
	for _, g := range n.Gates {
		short[g.Name] = timinglib.Uniform(80)
		long[g.Name] = timinglib.Uniform(100)
	}
	fast := analyze(t, n, DefaultConfig(2000), short)
	slow := analyze(t, n, DefaultConfig(2000), long)
	if !(fast.WNS > base.WNS && base.WNS > slow.WNS) {
		t.Fatalf("slack ordering wrong: 80nm=%.1f drawn=%.1f 100nm=%.1f",
			fast.WNS, base.WNS, slow.WNS)
	}
	if !(fast.LeakNW > base.LeakNW && base.LeakNW > slow.LeakNW) {
		t.Fatalf("leakage ordering wrong: %.1f %.1f %.1f",
			fast.LeakNW, base.LeakNW, slow.LeakNW)
	}
}

func TestRippleCarryCriticalPath(t *testing.T) {
	n := netlist.RippleCarryAdder(8)
	res := analyze(t, n, DefaultConfig(3000), nil)
	// The carry-out (or the MSB sum) must be the most critical endpoint.
	worst := res.Endpoints[0].Name
	if !strings.Contains(worst, "n") && worst != n.Outputs[len(n.Outputs)-1] {
		t.Logf("worst endpoint: %s", worst)
	}
	// Its path must be much longer than the LSB sum's path.
	lsb := n.Outputs[0]
	lsbAT, ok := res.ArrivalOf(lsb)
	if !ok {
		t.Fatal("LSB arrival missing")
	}
	if res.Endpoints[0].ArrivalPS < 2*lsbAT {
		t.Fatalf("carry chain %.1f should dwarf LSB %.1f", res.Endpoints[0].ArrivalPS, lsbAT)
	}
}

func TestSequentialEndpoints(t *testing.T) {
	lib, _ := env(t)
	_ = lib
	// DFF -> INV -> DFF pipeline.
	n := &netlist.Netlist{Name: "pipe", Inputs: []string{"din", "clk"}}
	n.AddGate("f1", "DFF_X1", map[string]string{"D": "din", "CK": "clk", "Q": "q1"})
	n.AddGate("g1", "INV_X1", map[string]string{"A": "q1", "Y": "n1"})
	n.AddGate("f2", "DFF_X1", map[string]string{"D": "n1", "CK": "clk", "Q": "q2"})
	n.Outputs = []string{"q2"}
	res := analyze(t, n, DefaultConfig(1000), nil)
	// Endpoints: f1/D, f2/D and the PO q2.
	names := map[string]bool{}
	for _, ep := range res.Endpoints {
		names[ep.Name] = true
	}
	for _, want := range []string{"f1/D", "f2/D", "q2"} {
		if !names[want] {
			t.Fatalf("missing endpoint %s (have %v)", want, names)
		}
	}
	// f2/D arrival = clk->Q of f1 + inverter delay: strictly positive and
	// larger than f1/D (direct input).
	var f1d, f2d Endpoint
	for _, ep := range res.Endpoints {
		switch ep.Name {
		case "f1/D":
			f1d = ep
		case "f2/D":
			f2d = ep
		}
	}
	if !(f2d.ArrivalPS > f1d.ArrivalPS) {
		t.Fatalf("flop-to-flop path should be longer: %v vs %v", f2d, f1d)
	}
	// Required time at D includes setup.
	if f2d.RequiredPS != 1000-25 {
		t.Fatalf("required = %.1f", f2d.RequiredPS)
	}
}

func TestCombinationalLoopDetected(t *testing.T) {
	lib, tl := env(t)
	n := &netlist.Netlist{Name: "loop"}
	n.AddGate("g1", "INV_X1", map[string]string{"A": "b", "Y": "a"})
	n.AddGate("g2", "INV_X1", map[string]string{"A": "a", "Y": "b"})
	n.Outputs = []string{"a"}
	if _, err := Build(n, lib, tl); err == nil {
		t.Fatal("expected loop detection error")
	}
}

func TestNonUnateXorPropagatesBothSenses(t *testing.T) {
	n := &netlist.Netlist{Name: "x", Inputs: []string{"a", "b"}, Outputs: []string{"y"}}
	n.AddGate("g1", "XOR2_X1", map[string]string{"A": "a", "B": "b", "Y": "y"})
	res := analyze(t, n, DefaultConfig(1000), nil)
	ep := res.Endpoints[0]
	if ep.ArrivalPS <= 0 {
		t.Fatal("no arrival through XOR")
	}
}

func TestCriticalGatesTagging(t *testing.T) {
	n := netlist.RippleCarryAdder(4)
	cfg := DefaultConfig(3000)
	cfg.KPaths = 3
	res := analyze(t, n, cfg, nil)
	tags := res.CriticalGates(3)
	if len(tags) == 0 {
		t.Fatal("no critical gates tagged")
	}
	// All tagged names are real gates.
	for _, name := range tags {
		if n.FindGate(name) < 0 {
			t.Fatalf("ghost gate %s", name)
		}
	}
	// Requesting more paths than available clamps.
	if got := res.CriticalGates(100); len(got) < len(tags) {
		t.Fatal("clamped tagging lost gates")
	}
}

func TestWireLoadsMissingNetFallsBack(t *testing.T) {
	n := netlist.InverterChain(8)
	cfg := DefaultConfig(2000)
	flat := analyze(t, n, cfg, nil) // nil map: flat CWireFF per gate sink

	// A non-nil map with no entries must not time every net at zero wire
	// cap — absent nets fall back to the same flat model, so an empty
	// map is bit-identical to a nil one.
	cfgEmpty := cfg
	cfgEmpty.WireLoads = map[string]float64{}
	empty := analyze(t, n, cfgEmpty, nil)
	if math.Float64bits(empty.WNS) != math.Float64bits(flat.WNS) ||
		math.Float64bits(empty.Endpoints[0].ArrivalPS) != math.Float64bits(flat.Endpoints[0].ArrivalPS) {
		t.Fatalf("empty WireLoads map diverges from nil: WNS %v vs %v", empty.WNS, flat.WNS)
	}

	// An explicit zero entry IS the way to declare a net wire-free: the
	// chain gets faster than the flat fallback.
	cfgZero := cfg
	cfgZero.WireLoads = map[string]float64{}
	for _, gt := range n.Gates {
		cfgZero.WireLoads[gt.Conn["Y"]] = 0
	}
	zero := analyze(t, n, cfgZero, nil)
	if !(zero.WNS > flat.WNS) {
		t.Fatalf("zero-wire chain should be faster: %v vs flat %v", zero.WNS, flat.WNS)
	}

	// A partial map mixes both: the supplied net uses its (heavier)
	// extraction, absent nets the flat fallback — so the chain lands
	// strictly slower than flat, far from the old all-zero behavior.
	heavy := 2 * testTL.P.CWireFF
	cfgHeavy := cfg
	cfgHeavy.WireLoads = map[string]float64{n.Gates[3].Conn["Y"]: heavy}
	part := analyze(t, n, cfgHeavy, nil)
	if !(part.WNS < flat.WNS && flat.WNS < zero.WNS) {
		t.Fatalf("partial map ordering: heavy-partial %v < flat %v < zero %v expected",
			part.WNS, flat.WNS, zero.WNS)
	}
}

func TestBacktraceTiedRiseFallArrival(t *testing.T) {
	// An endpoint whose rise and fall arrivals tie exactly must pick the
	// rise sense (atR >= atF) and backtrace through the rise
	// predecessor — deterministically, not by map luck. Real libraries
	// rarely produce exact ties, so drive finish() with a hand-made
	// arrival map on a real graph.
	lib, tl := env(t)
	n := &netlist.Netlist{Name: "tie", Inputs: []string{"a"}, Outputs: []string{"y"}}
	n.AddGate("g1", "INV_X1", map[string]string{"A": "a", "Y": "y"})
	g, err := Build(n, lib, tl)
	if err != nil {
		t.Fatal(err)
	}
	arr := make([]*arrival, len(g.netNames))
	arr[g.netIdx["a"]] = &arrival{fromNetR: -1, fromNetF: -1, valid: true}
	arr[g.netIdx["y"]] = &arrival{
		atR: 100, atF: 100, slewR: 20, slewF: 20,
		// Distinct predecessors per sense so the test observes which
		// one the backtrace followed.
		fromNetR: g.netIdx["a"], fromRiseR: false,
		fromNetF: g.netIdx["a"], fromRiseF: true,
		valid: true,
	}
	res := &Result{g: g, cfg: DefaultConfig(1000), arr: arr}
	if err := g.finish(res); err != nil {
		t.Fatal(err)
	}
	ep := res.Endpoints[0]
	if !ep.Rise || ep.ArrivalPS != 100 {
		t.Fatalf("tied arrival must resolve to rise: %+v", ep)
	}
	pts := res.Paths[0].Points
	if len(pts) != 2 || pts[1].Net != "y" || !pts[1].Rise {
		t.Fatalf("backtrace points: %+v", pts)
	}
	if pts[0].Net != "a" || pts[0].Rise {
		t.Fatalf("backtrace must follow the rise predecessor (fall at a): %+v", pts[0])
	}
}

func TestUnconstrainedEndpointsError(t *testing.T) {
	lib, tl := env(t)
	// A design whose only output hangs from an undriven... actually build
	// a gate driven only by a floating net is rejected by Connectivity;
	// instead test the no-endpoints error with an empty netlist.
	n := &netlist.Netlist{Name: "empty", Inputs: []string{"a"}}
	g, err := Build(n, lib, tl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Analyze(DefaultConfig(1000), nil); err == nil {
		t.Fatal("expected no-endpoints error")
	}
}
