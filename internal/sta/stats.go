package sta

import (
	"math"
	"sort"
)

// RankComparison quantifies how two analyses reorder the same endpoints —
// the paper's "significant reordering of speed path criticality".
type RankComparison struct {
	// Spearman is the rank correlation coefficient of endpoint
	// criticality (1 = identical order). Tied slacks receive midranks
	// (the mean of the positions they span), so a slack wall — many
	// endpoints at exactly the same slack — does not bias ρ by the
	// arbitrary order ties happen to be listed in.
	Spearman float64
	// KendallTau is the pairwise-concordance correlation.
	KendallTau float64
	// TopNOverlap[n] is the fraction of the n most critical endpoints of
	// `a` that also appear in the n most critical of `b`, for the
	// requested n values.
	TopNOverlap map[int]float64
	// N is the number of common endpoints compared.
	N int
}

// CompareOrders compares endpoint criticality between two results of the
// same design. topNs selects the overlap set sizes to report.
func CompareOrders(a, b *Result, topNs ...int) RankComparison {
	rankA := midranks(a)
	rankB := midranks(b)
	// Common endpoints only (they should be identical sets).
	var names []string
	for name := range rankA {
		if _, ok := rankB[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	n := len(names)
	cmp := RankComparison{N: n, TopNOverlap: map[int]float64{}}
	if n < 2 {
		cmp.Spearman = 1
		cmp.KendallTau = 1
		for _, k := range topNs {
			if k <= 0 {
				continue
			}
			cmp.TopNOverlap[k] = 1
		}
		return cmp
	}
	// Spearman over midrank vectors.
	var d2 float64
	for _, name := range names {
		d := rankA[name] - rankB[name]
		d2 += d * d
	}
	nf := float64(n)
	cmp.Spearman = 1 - 6*d2/(nf*(nf*nf-1))
	// Kendall tau-b over slack values (O(n²); endpoint counts are small).
	// Pairs tied in either analysis leave the numerator and discount the
	// denominator — plain tau-a kept all n(n−1)/2 pairs in the denominator
	// while skipping ties in the numerator, understating |τ| whenever
	// endpoint slacks tie (common on a slack wall).
	slackA := slacks(a)
	slackB := slacks(b)
	concordant, discordant, tiesA, tiesB := 0, 0, 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := slackA[names[i]] - slackA[names[j]]
			db := slackB[names[i]] - slackB[names[j]]
			switch {
			case da == 0 && db == 0:
				tiesA++
				tiesB++
			case da == 0:
				tiesA++
			case db == 0:
				tiesB++
			case da*db > 0:
				concordant++
			default:
				discordant++
			}
		}
	}
	pairs := n * (n - 1) / 2
	denom := math.Sqrt(float64(pairs-tiesA) * float64(pairs-tiesB))
	switch {
	case denom > 0:
		cmp.KendallTau = float64(concordant-discordant) / denom
	case tiesA == pairs && tiesB == pairs:
		cmp.KendallTau = 1 // both analyses fully tied: identical (non-)order
	default:
		cmp.KendallTau = 0 // one side fully tied: no order to correlate
	}
	// Top-N overlaps.
	for _, k := range topNs {
		if k <= 0 {
			continue
		}
		ka := topSet(a, k)
		kb := topSet(b, k)
		inter := 0
		for name := range ka {
			if kb[name] {
				inter++
			}
		}
		denom := len(ka)
		if denom == 0 {
			cmp.TopNOverlap[k] = 1
			continue
		}
		cmp.TopNOverlap[k] = float64(inter) / float64(denom)
	}
	return cmp
}

// midranks assigns criticality ranks (0 = most critical) by ascending
// slack, giving every member of a tied-slack run the mean of the
// positions the run spans. Dense sort-order ranks would order ties by
// the secondary name sort — pure listing accident — and a slack wall
// (hundreds of endpoints at one slack, routine in regular datapaths)
// would then contribute spurious d² to Spearman's ρ.
func midranks(r *Result) map[string]float64 {
	out := make(map[string]float64, len(r.Endpoints))
	eps := r.Endpoints // sorted by ascending slack
	for i := 0; i < len(eps); {
		j := i
		for j < len(eps) && eps[j].SlackPS == eps[i].SlackPS {
			j++
		}
		mid := float64(i+j-1) / 2
		for ; i < j; i++ {
			out[eps[i].Name] = mid
		}
	}
	return out
}

// slacks maps endpoint name -> slack (ps).
func slacks(r *Result) map[string]float64 {
	out := make(map[string]float64, len(r.Endpoints))
	for _, ep := range r.Endpoints {
		out[ep.Name] = ep.SlackPS
	}
	return out
}

func topSet(r *Result, k int) map[string]bool {
	if k > len(r.Endpoints) {
		k = len(r.Endpoints)
	}
	out := map[string]bool{}
	for _, ep := range r.Endpoints[:k] {
		out[ep.Name] = true
	}
	return out
}

// SlackShift summarizes the per-endpoint slack differences between a
// baseline (e.g. drawn-CD) and a comparison (e.g. post-OPC annotated)
// analysis.
type SlackShift struct {
	// WNSBase and WNSCmp are the worst slacks (ps).
	WNSBase, WNSCmp float64
	// WNSShiftPct is the relative change of worst-case slack in percent:
	// 100·(WNSCmp − WNSBase)/|WNSBase|.
	WNSShiftPct float64
	// MeanAbsShiftPS is the mean |Δslack| over endpoints.
	MeanAbsShiftPS float64
	// MaxAbsShiftPS is the largest per-endpoint |Δslack|.
	MaxAbsShiftPS float64
}

// CompareSlacks computes slack-shift statistics between two analyses of the
// same design.
func CompareSlacks(base, cmp *Result) SlackShift {
	slackB := map[string]float64{}
	for _, ep := range base.Endpoints {
		slackB[ep.Name] = ep.SlackPS
	}
	out := SlackShift{WNSBase: base.WNS, WNSCmp: cmp.WNS}
	if base.WNS != 0 {
		out.WNSShiftPct = 100 * (cmp.WNS - base.WNS) / math.Abs(base.WNS)
	}
	n := 0
	for _, ep := range cmp.Endpoints {
		b, ok := slackB[ep.Name]
		if !ok {
			continue
		}
		d := math.Abs(ep.SlackPS - b)
		out.MeanAbsShiftPS += d
		if d > out.MaxAbsShiftPS {
			out.MaxAbsShiftPS = d
		}
		n++
	}
	if n > 0 {
		out.MeanAbsShiftPS /= float64(n)
	}
	return out
}
