package sta

import (
	"math"
	"testing"
)

func mkResult(names []string, slacks []float64) *Result {
	r := &Result{}
	for i, n := range names {
		r.Endpoints = append(r.Endpoints, Endpoint{Name: n, SlackPS: slacks[i]})
	}
	// Sort ascending slack, like Analyze does.
	for i := 0; i < len(r.Endpoints); i++ {
		for j := i + 1; j < len(r.Endpoints); j++ {
			if r.Endpoints[j].SlackPS < r.Endpoints[i].SlackPS {
				r.Endpoints[i], r.Endpoints[j] = r.Endpoints[j], r.Endpoints[i]
			}
		}
	}
	r.WNS = r.Endpoints[0].SlackPS
	return r
}

func TestCompareOrdersIdentical(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	slacks := []float64{10, 20, 30, 40, 50}
	a := mkResult(names, slacks)
	b := mkResult(names, slacks)
	cmp := CompareOrders(a, b, 3)
	if cmp.Spearman != 1 || cmp.KendallTau != 1 {
		t.Fatalf("identical orders: %+v", cmp)
	}
	if cmp.TopNOverlap[3] != 1 {
		t.Fatalf("overlap = %v", cmp.TopNOverlap)
	}
	if cmp.N != 5 {
		t.Fatalf("N = %d", cmp.N)
	}
}

func TestCompareOrdersReversed(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	a := mkResult(names, []float64{10, 20, 30, 40, 50})
	b := mkResult(names, []float64{50, 40, 30, 20, 10})
	cmp := CompareOrders(a, b, 2)
	if math.Abs(cmp.Spearman-(-1)) > 1e-9 {
		t.Fatalf("reversed Spearman = %g", cmp.Spearman)
	}
	if math.Abs(cmp.KendallTau-(-1)) > 1e-9 {
		t.Fatalf("reversed Kendall = %g", cmp.KendallTau)
	}
	if cmp.TopNOverlap[2] != 0 {
		t.Fatalf("reversed top-2 overlap = %v", cmp.TopNOverlap)
	}
}

func TestCompareOrdersPartialShuffle(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e", "f"}
	a := mkResult(names, []float64{1, 2, 3, 4, 5, 6})
	// Swap the two most critical; keep the rest.
	b := mkResult(names, []float64{2, 1, 3, 4, 5, 6})
	cmp := CompareOrders(a, b, 2, 4)
	if cmp.Spearman >= 1 || cmp.Spearman < 0.8 {
		t.Fatalf("mild shuffle Spearman = %g", cmp.Spearman)
	}
	if cmp.TopNOverlap[2] != 1 { // same set, different order
		t.Fatalf("top-2 overlap = %v", cmp.TopNOverlap)
	}
	if cmp.TopNOverlap[4] != 1 {
		t.Fatalf("top-4 overlap = %v", cmp.TopNOverlap)
	}
}

func TestCompareOrdersKendallTauB(t *testing.T) {
	// Table-driven tau-b checks against hand-computed values, including
	// tied slacks (the E5/E6 slack-wall regime the tau-a denominator
	// mishandled).
	names4 := []string{"a", "b", "c", "d"}
	cases := []struct {
		name  string
		a, b  []float64
		names []string
		want  float64
	}{
		// No ties: tau-b equals plain tau.
		{"concordant", []float64{1, 2, 3, 4}, []float64{10, 20, 30, 40}, names4, 1},
		{"one swap", []float64{1, 2, 3, 4}, []float64{2, 1, 3, 4}, names4, 1 - 2.0/6.0},
		// One tied pair in b: nc=5, nd=0, n0=6, n1=0, n2=1:
		// τb = 5/√(6·5) = 0.91287…
		{"tie in b", []float64{1, 2, 3, 4}, []float64{1, 2, 2, 4}, names4, 5 / math.Sqrt(30)},
		// The same pair tied in both analyses drops out of both sides:
		// remaining 5 pairs all concordant → τb = 1.
		{"tie in both", []float64{1, 2, 2, 4}, []float64{5, 6, 6, 9}, names4, 1},
		// Everything tied on both sides: identical (non-)order.
		{"all tied both", []float64{7, 7, 7}, []float64{3, 3, 3}, []string{"a", "b", "c"}, 1},
		// One side fully tied, the other ordered: nothing to correlate.
		{"one side flat", []float64{7, 7, 7}, []float64{1, 2, 3}, []string{"a", "b", "c"}, 0},
	}
	for _, c := range cases {
		cmp := CompareOrders(mkResult(c.names, c.a), mkResult(c.names, c.b))
		if math.Abs(cmp.KendallTau-c.want) > 1e-12 {
			t.Errorf("%s: tau-b = %.6f, want %.6f", c.name, cmp.KendallTau, c.want)
		}
	}
}

func TestCompareOrdersTauNotUnderstatedByTies(t *testing.T) {
	// Two perfectly agreeing analyses that share a tie must report τ=1;
	// the old tau-a kept the tied pair in the denominator and reported
	// 5/6 instead.
	names := []string{"a", "b", "c", "d"}
	a := mkResult(names, []float64{1, 2, 2, 4})
	b := mkResult(names, []float64{1, 2, 2, 4})
	cmp := CompareOrders(a, b)
	if cmp.KendallTau != 1 {
		t.Fatalf("agreeing analyses with a tie: tau = %g, want 1", cmp.KendallTau)
	}
}

func TestCompareOrdersDegenerate(t *testing.T) {
	a := mkResult([]string{"x"}, []float64{1})
	b := mkResult([]string{"x"}, []float64{2})
	cmp := CompareOrders(a, b, 1)
	if cmp.Spearman != 1 || cmp.TopNOverlap[1] != 1 {
		t.Fatalf("degenerate comparison: %+v", cmp)
	}
}

func TestCompareOrdersSpearmanMidranks(t *testing.T) {
	// Tied slacks take midranks. A={1,2,2,4} vs B={1,3,2,4}: in A the
	// b/c tie spans positions 1–2 → both rank 1.5; in B the order is
	// a,c,b,d. Σd² = 0.5² + 0.5² = 0.5 → ρ = 1 − 6·0.5/(4·15) = 0.95.
	// Dense sort-order ranks broke the A-side tie by name and reported
	// 0.8 — penalizing a listing accident as disorder.
	names := []string{"a", "b", "c", "d"}
	a := mkResult(names, []float64{1, 2, 2, 4})
	b := mkResult(names, []float64{1, 3, 2, 4})
	cmp := CompareOrders(a, b)
	if math.Abs(cmp.Spearman-0.95) > 1e-12 {
		t.Fatalf("midrank Spearman = %g, want 0.95", cmp.Spearman)
	}
}

func TestCompareOrdersSpearmanSlackWall(t *testing.T) {
	// A slack wall (E5/E6 regime): many endpoints at exactly the same
	// slack. Identical analyses must report ρ = 1 no matter how the tie
	// run is listed.
	names := []string{"a", "b", "c", "d", "e", "f"}
	wall := []float64{-5, 3, 3, 3, 3, 9}
	cmp := CompareOrders(mkResult(names, wall), mkResult(names, wall))
	if cmp.Spearman != 1 {
		t.Fatalf("identical wall: ρ = %g, want exactly 1", cmp.Spearman)
	}
	// One analysis breaks the wall into a strict order: the tied side
	// contributes midranks, the broken side its actual order.
	// A: a=0, b..e=2.5 each, f=5. B={-5,2,3,4,5,9}: a=0,b=1,c=2,d=3,e=4,f=5.
	// Σd² = 1.5²+0.5²+0.5²+1.5² = 5 → ρ = 1 − 30/210 = 6/7.
	cmp = CompareOrders(mkResult(names, wall), mkResult(names, []float64{-5, 2, 3, 4, 5, 9}))
	if math.Abs(cmp.Spearman-6.0/7.0) > 1e-12 {
		t.Fatalf("broken wall: ρ = %g, want %g", cmp.Spearman, 6.0/7.0)
	}
}

func TestCompareOrdersNonPositiveTopN(t *testing.T) {
	// k <= 0 overlap sets are meaningless and must not be reported —
	// in either the general path or the n < 2 early return.
	big := CompareOrders(
		mkResult([]string{"a", "b"}, []float64{1, 2}),
		mkResult([]string{"a", "b"}, []float64{1, 2}), 0, -3, 2)
	small := CompareOrders(
		mkResult([]string{"a"}, []float64{1}),
		mkResult([]string{"a"}, []float64{1}), 0, -3, 1)
	for name, cmp := range map[string]RankComparison{"n=2": big, "n=1": small} {
		for k := range cmp.TopNOverlap {
			if k <= 0 {
				t.Errorf("%s: TopNOverlap reports non-positive k=%d: %v", name, k, cmp.TopNOverlap)
			}
		}
	}
	if big.TopNOverlap[2] != 1 || small.TopNOverlap[1] != 1 {
		t.Fatalf("positive k lost: %v / %v", big.TopNOverlap, small.TopNOverlap)
	}
}

func TestCompareSlacks(t *testing.T) {
	names := []string{"a", "b", "c"}
	base := mkResult(names, []float64{100, 200, 300})
	cmp := mkResult(names, []float64{140, 180, 330})
	s := CompareSlacks(base, cmp)
	if s.WNSBase != 100 || s.WNSCmp != 140 {
		t.Fatalf("WNS fields: %+v", s)
	}
	if math.Abs(s.WNSShiftPct-40) > 1e-9 {
		t.Fatalf("WNS shift = %g%%, want 40%%", s.WNSShiftPct)
	}
	if math.Abs(s.MeanAbsShiftPS-30) > 1e-9 {
		t.Fatalf("mean |Δ| = %g", s.MeanAbsShiftPS)
	}
	if s.MaxAbsShiftPS != 40 {
		t.Fatalf("max |Δ| = %g", s.MaxAbsShiftPS)
	}
}

func TestCompareSlacksZeroBase(t *testing.T) {
	// WNSBase == 0 makes the relative shift undefined; the contract is a
	// reported 0% whatever the comparison side says — locked here so a
	// future "fix" doesn't silently start emitting ±Inf or NaN.
	cases := []struct {
		name    string
		cmpWNS  float64
		wantPct float64
	}{
		{"cmp positive", 10, 0},
		{"cmp negative", -25, 0},
		{"cmp zero", 0, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			base := mkResult([]string{"a"}, []float64{0})
			cmp := mkResult([]string{"a"}, []float64{c.cmpWNS})
			s := CompareSlacks(base, cmp)
			if s.WNSShiftPct != c.wantPct {
				t.Fatalf("zero-base shift = %g, want %g", s.WNSShiftPct, c.wantPct)
			}
			if math.IsNaN(s.WNSShiftPct) || math.IsInf(s.WNSShiftPct, 0) {
				t.Fatalf("zero-base shift not finite: %g", s.WNSShiftPct)
			}
			if s.WNSBase != 0 || s.WNSCmp != c.cmpWNS {
				t.Fatalf("WNS fields: %+v", s)
			}
		})
	}
}
