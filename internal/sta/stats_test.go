package sta

import (
	"math"
	"testing"
)

func mkResult(names []string, slacks []float64) *Result {
	r := &Result{}
	for i, n := range names {
		r.Endpoints = append(r.Endpoints, Endpoint{Name: n, SlackPS: slacks[i]})
	}
	// Sort ascending slack, like Analyze does.
	for i := 0; i < len(r.Endpoints); i++ {
		for j := i + 1; j < len(r.Endpoints); j++ {
			if r.Endpoints[j].SlackPS < r.Endpoints[i].SlackPS {
				r.Endpoints[i], r.Endpoints[j] = r.Endpoints[j], r.Endpoints[i]
			}
		}
	}
	r.WNS = r.Endpoints[0].SlackPS
	return r
}

func TestCompareOrdersIdentical(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	slacks := []float64{10, 20, 30, 40, 50}
	a := mkResult(names, slacks)
	b := mkResult(names, slacks)
	cmp := CompareOrders(a, b, 3)
	if cmp.Spearman != 1 || cmp.KendallTau != 1 {
		t.Fatalf("identical orders: %+v", cmp)
	}
	if cmp.TopNOverlap[3] != 1 {
		t.Fatalf("overlap = %v", cmp.TopNOverlap)
	}
	if cmp.N != 5 {
		t.Fatalf("N = %d", cmp.N)
	}
}

func TestCompareOrdersReversed(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	a := mkResult(names, []float64{10, 20, 30, 40, 50})
	b := mkResult(names, []float64{50, 40, 30, 20, 10})
	cmp := CompareOrders(a, b, 2)
	if math.Abs(cmp.Spearman-(-1)) > 1e-9 {
		t.Fatalf("reversed Spearman = %g", cmp.Spearman)
	}
	if math.Abs(cmp.KendallTau-(-1)) > 1e-9 {
		t.Fatalf("reversed Kendall = %g", cmp.KendallTau)
	}
	if cmp.TopNOverlap[2] != 0 {
		t.Fatalf("reversed top-2 overlap = %v", cmp.TopNOverlap)
	}
}

func TestCompareOrdersPartialShuffle(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e", "f"}
	a := mkResult(names, []float64{1, 2, 3, 4, 5, 6})
	// Swap the two most critical; keep the rest.
	b := mkResult(names, []float64{2, 1, 3, 4, 5, 6})
	cmp := CompareOrders(a, b, 2, 4)
	if cmp.Spearman >= 1 || cmp.Spearman < 0.8 {
		t.Fatalf("mild shuffle Spearman = %g", cmp.Spearman)
	}
	if cmp.TopNOverlap[2] != 1 { // same set, different order
		t.Fatalf("top-2 overlap = %v", cmp.TopNOverlap)
	}
	if cmp.TopNOverlap[4] != 1 {
		t.Fatalf("top-4 overlap = %v", cmp.TopNOverlap)
	}
}

func TestCompareOrdersKendallTauB(t *testing.T) {
	// Table-driven tau-b checks against hand-computed values, including
	// tied slacks (the E5/E6 slack-wall regime the tau-a denominator
	// mishandled).
	names4 := []string{"a", "b", "c", "d"}
	cases := []struct {
		name  string
		a, b  []float64
		names []string
		want  float64
	}{
		// No ties: tau-b equals plain tau.
		{"concordant", []float64{1, 2, 3, 4}, []float64{10, 20, 30, 40}, names4, 1},
		{"one swap", []float64{1, 2, 3, 4}, []float64{2, 1, 3, 4}, names4, 1 - 2.0/6.0},
		// One tied pair in b: nc=5, nd=0, n0=6, n1=0, n2=1:
		// τb = 5/√(6·5) = 0.91287…
		{"tie in b", []float64{1, 2, 3, 4}, []float64{1, 2, 2, 4}, names4, 5 / math.Sqrt(30)},
		// The same pair tied in both analyses drops out of both sides:
		// remaining 5 pairs all concordant → τb = 1.
		{"tie in both", []float64{1, 2, 2, 4}, []float64{5, 6, 6, 9}, names4, 1},
		// Everything tied on both sides: identical (non-)order.
		{"all tied both", []float64{7, 7, 7}, []float64{3, 3, 3}, []string{"a", "b", "c"}, 1},
		// One side fully tied, the other ordered: nothing to correlate.
		{"one side flat", []float64{7, 7, 7}, []float64{1, 2, 3}, []string{"a", "b", "c"}, 0},
	}
	for _, c := range cases {
		cmp := CompareOrders(mkResult(c.names, c.a), mkResult(c.names, c.b))
		if math.Abs(cmp.KendallTau-c.want) > 1e-12 {
			t.Errorf("%s: tau-b = %.6f, want %.6f", c.name, cmp.KendallTau, c.want)
		}
	}
}

func TestCompareOrdersTauNotUnderstatedByTies(t *testing.T) {
	// Two perfectly agreeing analyses that share a tie must report τ=1;
	// the old tau-a kept the tied pair in the denominator and reported
	// 5/6 instead.
	names := []string{"a", "b", "c", "d"}
	a := mkResult(names, []float64{1, 2, 2, 4})
	b := mkResult(names, []float64{1, 2, 2, 4})
	cmp := CompareOrders(a, b)
	if cmp.KendallTau != 1 {
		t.Fatalf("agreeing analyses with a tie: tau = %g, want 1", cmp.KendallTau)
	}
}

func TestCompareOrdersDegenerate(t *testing.T) {
	a := mkResult([]string{"x"}, []float64{1})
	b := mkResult([]string{"x"}, []float64{2})
	cmp := CompareOrders(a, b, 1)
	if cmp.Spearman != 1 || cmp.TopNOverlap[1] != 1 {
		t.Fatalf("degenerate comparison: %+v", cmp)
	}
}

func TestCompareSlacks(t *testing.T) {
	names := []string{"a", "b", "c"}
	base := mkResult(names, []float64{100, 200, 300})
	cmp := mkResult(names, []float64{140, 180, 330})
	s := CompareSlacks(base, cmp)
	if s.WNSBase != 100 || s.WNSCmp != 140 {
		t.Fatalf("WNS fields: %+v", s)
	}
	if math.Abs(s.WNSShiftPct-40) > 1e-9 {
		t.Fatalf("WNS shift = %g%%, want 40%%", s.WNSShiftPct)
	}
	if math.Abs(s.MeanAbsShiftPS-30) > 1e-9 {
		t.Fatalf("mean |Δ| = %g", s.MeanAbsShiftPS)
	}
	if s.MaxAbsShiftPS != 40 {
		t.Fatalf("max |Δ| = %g", s.MaxAbsShiftPS)
	}
}

func TestCompareSlacksZeroBase(t *testing.T) {
	base := mkResult([]string{"a"}, []float64{0})
	cmp := mkResult([]string{"a"}, []float64{10})
	s := CompareSlacks(base, cmp)
	if s.WNSShiftPct != 0 {
		t.Fatalf("zero-base shift should be 0, got %g", s.WNSShiftPct)
	}
}
