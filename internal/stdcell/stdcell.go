// Package stdcell generates the synthetic standard-cell library for the N90
// kit: complete Manhattan layouts (wells, diffusion, poly gates, contacts,
// metal1) plus the pin/function metadata the netlist and timing layers use.
//
// The layouts are what give the post-OPC flow a realistic optical context:
// gate poly sits at production pitch between neighbour gates, power rails
// and metal cross above, and cell abutment creates the dense/iso variety
// that drives OPC residuals.
package stdcell

import (
	"fmt"
	"sort"

	"postopc/internal/geom"
	"postopc/internal/layout"
	"postopc/internal/pdk"
)

// Kind classifies a cell's timing role.
type Kind uint8

const (
	// Comb cells propagate input-to-output arcs.
	Comb Kind = iota
	// Seq cells are flip-flops: timing paths end at D and start at Q.
	Seq
	// Fill cells have no pins.
	Fill
)

// Unate describes how output transitions relate to input transitions.
type Unate uint8

const (
	// Inverting: a rising input causes a falling output (INV, NAND, NOR,
	// AOI, OAI).
	Inverting Unate = iota
	// NonInverting: transitions propagate with the same sense (BUF).
	NonInverting
	// NonUnate: either input transition can cause either output
	// transition (XOR, XNOR).
	NonUnate
)

// Info is one library cell: layout plus interface metadata.
type Info struct {
	// Name is the cell name, e.g. "NAND2_X1".
	Name string
	// Layout is the generated geometry.
	Layout *layout.Cell
	// Inputs are the input pin names in canonical order.
	Inputs []string
	// Output is the output pin name ("" for fill).
	Output string
	// Kind is the timing role.
	Kind Kind
	// DriveX is the drive-strength multiplier (1, 2, 4...).
	DriveX int
	// StackedN and StackedP are the worst-case series-stack depths of the
	// pull-down (NMOS) and pull-up (PMOS) networks; they derate the
	// corresponding drive in the timing model (NAND2: N=2 P=1; NOR2: N=1
	// P=2).
	StackedN, StackedP int
	// Unate is the arc sense used by STA's rise/fall propagation.
	Unate Unate
}

// Library is a generated cell library.
type Library struct {
	// PDK is the kit the cells were generated for.
	PDK *pdk.PDK
	// Cells maps cell name to its Info.
	Cells map[string]*Info
}

// archetype describes how to synthesize one logic family.
type archetype struct {
	base       string
	inputs     []string
	nGates     int // poly gate strips (>= len(inputs); extras are internal)
	kind       Kind
	stackN     int
	stackP     int
	unate      Unate
	wnX1       geom.Coord // X1 NMOS width
	wpX1       geom.Coord // X1 PMOS width
	pitchDelta geom.Coord // gate pitch offset from the contacted minimum
	drives     []int
}

// NewLibrary generates the full library for the kit.
func NewLibrary(p *pdk.PDK) (*Library, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	lib := &Library{PDK: p, Cells: map[string]*Info{}}
	arch := []archetype{
		{"INV", []string{"A"}, 1, Comb, 1, 1, Inverting, 520, 780, 200, []int{1, 2, 4, 8}},
		{"BUF", []string{"A"}, 2, Comb, 1, 1, NonInverting, 520, 780, 120, []int{1, 2, 4}},
		{"NAND2", []string{"A", "B"}, 2, Comb, 2, 1, Inverting, 640, 780, 0, []int{1, 2, 4}},
		{"NAND3", []string{"A", "B", "C"}, 3, Comb, 3, 1, Inverting, 760, 780, 0, []int{1, 2}},
		{"NOR2", []string{"A", "B"}, 2, Comb, 1, 2, Inverting, 520, 1040, 100, []int{1, 2}},
		{"NOR3", []string{"A", "B", "C"}, 3, Comb, 1, 3, Inverting, 520, 1200, 60, []int{1}},
		{"AOI21", []string{"A1", "A2", "B"}, 3, Comb, 2, 2, Inverting, 640, 1040, 40, []int{1, 2}},
		{"OAI21", []string{"A1", "A2", "B"}, 3, Comb, 2, 2, Inverting, 640, 1040, 20, []int{1, 2}},
		{"XOR2", []string{"A", "B"}, 4, Comb, 2, 2, NonUnate, 640, 900, 0, []int{1, 2}},
		{"XNOR2", []string{"A", "B"}, 4, Comb, 2, 2, NonUnate, 640, 900, 80, []int{1}},
		{"DFF", []string{"D", "CK"}, 6, Seq, 2, 2, NonInverting, 640, 900, 20, []int{1, 2}},
		{"FILL", nil, 1, Fill, 1, 1, Inverting, 0, 0, 0, []int{1}},
	}
	for _, a := range arch {
		for _, d := range a.drives {
			info, err := synthesize(p, a, d)
			if err != nil {
				return nil, fmt.Errorf("stdcell: %s_X%d: %w", a.base, d, err)
			}
			lib.Cells[info.Name] = info
		}
	}
	return lib, nil
}

// Get returns a cell by name.
func (l *Library) Get(name string) (*Info, error) {
	c, ok := l.Cells[name]
	if !ok {
		return nil, fmt.Errorf("stdcell: unknown cell %q", name)
	}
	return c, nil
}

// Names returns all cell names, sorted.
func (l *Library) Names() []string {
	out := make([]string, 0, len(l.Cells))
	for n := range l.Cells {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// synthesize builds the layout of one cell variant.
func synthesize(p *pdk.PDK, a archetype, drive int) (*Info, error) {
	r := p.Rules
	name := fmt.Sprintf("%s_X%d", a.base, drive)
	c := &layout.Cell{Name: name}
	// Per-archetype gate pitch: real libraries space their gates by what
	// the cell's routing needs, not at one uniform pitch. This is the
	// context diversity that makes uncorrected proximity effects (and
	// residual OPC errors) differ from cell to cell.
	pitch := r.PolyPitchNM + a.pitchDelta

	wn := a.wnX1 * geom.Coord(drive)
	wp := a.wpX1 * geom.Coord(drive)
	height := r.CellHeightNM
	// Tall devices are folded into parallel fingers, like real high-drive
	// cells: each input then controls `fingers` adjacent poly strips. The
	// vertical budget is the cell height minus rails, diffusion margins
	// and a minimum N-to-P separation.
	budget := height - 2*r.RailWidthNM - 2*180 - 400
	fingers := 1
	for (wn+wp)/geom.Coord(fingers) > budget {
		fingers++
	}
	wn /= geom.Coord(fingers)
	wp /= geom.Coord(fingers)
	nStrips := a.nGates * fingers

	// Horizontal extent: strips at poly pitch with a full pitch of margin,
	// rounded up to placement sites.
	coreW := geom.Coord(nStrips+1) * pitch
	width := ((coreW + r.SiteWidthNM - 1) / r.SiteWidthNM) * r.SiteWidthNM
	c.Box = geom.R(0, 0, width, height)

	// Power rails (metal1) at bottom (VSS) and top (VDD).
	c.AddRect(layout.LayerMetal1, geom.R(0, 0, width, r.RailWidthNM))
	c.AddRect(layout.LayerMetal1, geom.R(0, height-r.RailWidthNM, width, height))

	if a.kind == Fill {
		// Fill cells carry a dummy poly strip for pattern-density
		// uniformity and nothing else.
		cx := width / 2
		c.AddRect(layout.LayerPoly, geom.R(cx-r.PolyWidthNM/2, r.RailWidthNM+100,
			cx+r.PolyWidthNM/2, height-r.RailWidthNM-100))
		c.Box = geom.R(0, 0, width, height)
		return &Info{Name: name, Layout: c, Kind: Fill, DriveX: drive, StackedN: 1, StackedP: 1}, nil
	}

	// Diffusions: NMOS strip near VSS, PMOS strip near VDD, spanning the
	// source/drain contact columns on either side of the poly strips.
	first := (width - geom.Coord(nStrips-1)*pitch) / 2
	diffMargin := geom.Coord(180) // rail to diffusion
	diffX0 := first - pitch/2 - r.ContactNM
	diffX1 := first + geom.Coord(nStrips-1)*pitch + pitch/2 + r.ContactNM
	// Keep half the diffusion space to the cell edge so abutted neighbours
	// stay legal (another violation class the DRC engine caught).
	if edge := r.DiffWidthNM / 2; diffX0 < edge {
		diffX0 = edge
	}
	if edge := width - r.DiffWidthNM/2; diffX1 > edge {
		diffX1 = edge
	}
	ndiff := geom.R(diffX0, r.RailWidthNM+diffMargin, diffX1, r.RailWidthNM+diffMargin+wn)
	pdiff := geom.R(diffX0, height-r.RailWidthNM-diffMargin-wp, diffX1, height-r.RailWidthNM-diffMargin)
	c.AddRect(layout.LayerDiffusion, ndiff)
	c.AddRect(layout.LayerDiffusion, pdiff)
	// N-well over the PMOS half.
	c.AddRect(layout.LayerNWell, geom.R(0, height/2, width, height))

	// Poly gate strips, one per transistor finger, at pitch, centered.
	l := r.GateLengthNM
	polyY0 := ndiff.Y0 - r.PolyExtNM
	polyY1 := pdiff.Y1 + r.PolyExtNM
	for si := 0; si < nStrips; si++ {
		cx := first + geom.Coord(si)*pitch
		strip := geom.R(cx-l/2, polyY0, cx+l/2, polyY1)
		c.AddRect(layout.LayerPoly, strip)
		// Poly landing pad (wider poly) below the NMOS diffusion for the
		// input contact — classic T-shaped gate. The pad width keeps
		// pad-to-pad space at the contacted pitch ≥ 200nm: wide pads at
		// the minimum poly space print bridged at the underdose corner of
		// the window (the full-chip ORC bench demonstrates this class of
		// failure), so the cells honour the litho-aware rule instead.
		padHalf := (pitch - 200) / 2
		if padHalf > 90 {
			padHalf = 90
		}
		// The pad abuts the strip bottom so the T is one connected shape
		// (a detached pad leaves an isolated strip line-end whose pullback
		// opens the connection — a hotspot class the ORC bench caught).
		// Its bottom stays half the poly space away from the cell edge so
		// MX-abutted rows keep legal pad-to-pad spacing (a violation class
		// the DRC engine caught).
		padY0 := r.PolySpaceNM / 2
		pad := geom.R(cx-padHalf, padY0, cx+padHalf, polyY0)
		c.AddRect(layout.LayerPoly, pad)
		c.AddRect(layout.LayerContact, squareAt(pad.Center(), r.ContactNM))

		// Gate sites: the channel rectangles where the strip crosses the
		// diffusions. Adjacent fingers share a pin; internal strips
		// (beyond the declared inputs) map to the last input pin (e.g. DFF
		// internal stages clocked by CK).
		gi := si / fingers
		pin := a.inputs[min(gi, len(a.inputs)-1)]
		c.Gates = append(c.Gates,
			layout.GateSite{
				Name: fmt.Sprintf("MN%d_%d", gi, si%fingers), Pin: pin, Kind: layout.NMOS,
				Channel: geom.R(cx-l/2, ndiff.Y0, cx+l/2, ndiff.Y1),
			},
			layout.GateSite{
				Name: fmt.Sprintf("MP%d_%d", gi, si%fingers), Pin: pin, Kind: layout.PMOS,
				Channel: geom.R(cx-l/2, pdiff.Y0, cx+l/2, pdiff.Y1),
			},
		)
	}

	// Source/drain contacts between and outside the gates, on both
	// diffusions, plus stub M1.
	for si := 0; si <= nStrips; si++ {
		cx := first + geom.Coord(si)*pitch - pitch/2
		for _, diff := range []geom.Rect{ndiff, pdiff} {
			ccy := diff.Center().Y
			ct := squareAt(geom.Pt(cx, ccy), r.ContactNM)
			c.AddRect(layout.LayerContact, ct)
			c.AddRect(layout.LayerMetal1, ct.Expand(40))
		}
	}

	// Output metal1 strap on the right side connecting the stacks.
	outX := width - pitch/2
	c.AddRect(layout.LayerMetal1, geom.R(outX-r.Metal1WidthNM/2, ndiff.Center().Y,
		outX+r.Metal1WidthNM/2, pdiff.Center().Y))

	c.Box = geom.R(0, 0, width, height) // pads/straps stay inside

	return &Info{
		Name:     name,
		Layout:   c,
		Inputs:   append([]string(nil), a.inputs...),
		Output:   outputPin(a.base),
		Kind:     a.kind,
		DriveX:   drive,
		StackedN: a.stackN,
		StackedP: a.stackP,
		Unate:    a.unate,
	}, nil
}

func outputPin(base string) string {
	if base == "DFF" {
		return "Q"
	}
	return "Y"
}

func squareAt(center geom.Point, size geom.Coord) geom.Rect {
	return geom.R(center.X-size/2, center.Y-size/2, center.X+size/2, center.Y+size/2)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxC(a, b geom.Coord) geom.Coord {
	if a > b {
		return a
	}
	return b
}
