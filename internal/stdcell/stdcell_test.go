package stdcell

import (
	"strings"
	"testing"

	"postopc/internal/geom"
	"postopc/internal/layout"
	"postopc/internal/pdk"
)

func newLib(t *testing.T) *Library {
	t.Helper()
	lib, err := NewLibrary(pdk.N90())
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestLibraryRoster(t *testing.T) {
	lib := newLib(t)
	must := []string{"INV_X1", "INV_X4", "BUF_X1", "NAND2_X1", "NAND3_X1",
		"NOR2_X1", "AOI21_X1", "OAI21_X1", "XOR2_X1", "DFF_X1", "FILL_X1"}
	for _, n := range must {
		if _, err := lib.Get(n); err != nil {
			t.Errorf("missing cell %s", n)
		}
	}
	if _, err := lib.Get("NAND9_X9"); err == nil {
		t.Error("expected error for unknown cell")
	}
	names := lib.Names()
	if len(names) != len(lib.Cells) {
		t.Fatal("Names() length mismatch")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names() not sorted")
		}
	}
}

func TestCellGeometrySanity(t *testing.T) {
	lib := newLib(t)
	p := lib.PDK
	for _, name := range lib.Names() {
		info := lib.Cells[name]
		c := info.Layout
		if c.Box.H() != p.Rules.CellHeightNM {
			t.Errorf("%s: height %d != row height", name, c.Box.H())
		}
		if c.Box.W()%p.Rules.SiteWidthNM != 0 {
			t.Errorf("%s: width %d not a site multiple", name, c.Box.W())
		}
		// All shapes inside the box.
		for _, s := range c.Shapes {
			if !c.Box.ContainsRect(s.Rect) {
				t.Errorf("%s: %v shape %v escapes box %v", name, s.Layer, s.Rect, c.Box)
			}
		}
		// Every gate site has the drawn gate length and positive width.
		for _, g := range c.Gates {
			if g.L() != p.Rules.GateLengthNM {
				t.Errorf("%s/%s: L = %d", name, g.Name, g.L())
			}
			if g.W() <= 0 {
				t.Errorf("%s/%s: W = %d", name, g.Name, g.W())
			}
		}
	}
}

func TestGateSitesLieOnPolyAndDiffusion(t *testing.T) {
	lib := newLib(t)
	for _, name := range lib.Names() {
		c := lib.Cells[name].Layout
		poly := geom.RegionFromRects(c.ShapesOn(layout.LayerPoly)...)
		diff := geom.RegionFromRects(c.ShapesOn(layout.LayerDiffusion)...)
		gateRegion := poly.Intersect(diff)
		for _, g := range c.Gates {
			// The channel must be exactly a poly∩diffusion component.
			got := gateRegion.Intersect(geom.RegionFromRects(g.Channel)).Area()
			if got != g.Channel.Area() {
				t.Errorf("%s/%s: channel %v not covered by poly∩diff", name, g.Name, g.Channel)
			}
		}
	}
}

func TestGateCountsPerArchetype(t *testing.T) {
	lib := newLib(t)
	// X1 cells are unfolded: device count = 2 × strips.
	wantStrips := map[string]int{
		"INV_X1": 1, "BUF_X1": 2, "NAND2_X1": 2, "NAND3_X1": 3,
		"NOR2_X1": 2, "NOR3_X1": 3, "AOI21_X1": 3, "OAI21_X1": 3,
		"XOR2_X1": 4, "DFF_X1": 6,
	}
	for name, strips := range wantStrips {
		c := lib.Cells[name]
		if got := len(c.Layout.Gates); got < 2*strips {
			t.Errorf("%s: %d gate sites, want >= %d", name, got, 2*strips)
		}
	}
}

func TestDriveScalesTotalWidth(t *testing.T) {
	lib := newLib(t)
	totalW := func(name string, k layout.DeviceKind) geom.Coord {
		var s geom.Coord
		for _, g := range lib.Cells[name].Layout.Gates {
			if g.Kind == k && strings.HasPrefix(g.Name, "M") {
				s += g.W()
			}
		}
		return s
	}
	w1 := totalW("INV_X1", layout.NMOS)
	w4 := totalW("INV_X4", layout.NMOS)
	// Folding preserves total width within rounding.
	if w4 < 3*w1 || w4 > 5*w1 {
		t.Fatalf("INV_X4 total W = %d vs X1 %d", w4, w1)
	}
}

func TestFoldingKeepsDevicesInCell(t *testing.T) {
	lib := newLib(t)
	inv8 := lib.Cells["INV_X8"]
	if len(inv8.Layout.Gates) <= 2 {
		t.Fatal("INV_X8 should be folded into multiple fingers")
	}
	// Folded fingers of one pin must be adjacent strips with the same pin.
	for _, g := range inv8.Layout.Gates {
		if g.Pin != "A" {
			t.Fatalf("INV_X8 gate pin = %s", g.Pin)
		}
	}
}

func TestPinsAndKinds(t *testing.T) {
	lib := newLib(t)
	nand := lib.Cells["NAND2_X1"]
	if nand.Output != "Y" || len(nand.Inputs) != 2 {
		t.Fatalf("NAND2 interface = %v -> %s", nand.Inputs, nand.Output)
	}
	dff := lib.Cells["DFF_X1"]
	if dff.Kind != Seq || dff.Output != "Q" {
		t.Fatalf("DFF kind/output = %v/%s", dff.Kind, dff.Output)
	}
	fill := lib.Cells["FILL_X1"]
	if fill.Kind != Fill || fill.Output != "" || len(fill.Layout.Gates) != 0 {
		t.Fatal("FILL must have no pins or gates")
	}
}

func TestPolyPitchRespected(t *testing.T) {
	lib := newLib(t)
	p := lib.PDK
	c := lib.Cells["NAND3_X1"].Layout
	xs := []geom.Coord{}
	for _, g := range c.Gates {
		if g.Kind == layout.NMOS {
			xs = append(xs, g.Channel.X0)
		}
	}
	for i := 1; i < len(xs); i++ {
		if d := xs[i] - xs[i-1]; d != p.Rules.PolyPitchNM {
			t.Fatalf("gate pitch %d != %d", d, p.Rules.PolyPitchNM)
		}
	}
}
