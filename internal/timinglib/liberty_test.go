package timinglib

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteLiberty(t *testing.T) {
	lib, tl := env(t)
	var buf bytes.Buffer
	slews := []float64{10, 40, 120}
	loads := []float64{2, 8, 24}
	if err := tl.WriteLiberty(&buf, lib, nil, slews, loads); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"library (N90)",
		"lu_table_template (tmpl_3x3)",
		"cell (INV_X1)",
		"cell (NAND2_X1)",
		`related_pin : "A"`,
		"timing_sense : negative_unate",
		"timing_sense : non_unate", // XOR2
		"cell_rise (tmpl_3x3)",
		"cell_leakage_power",
		"ff (IQ)", // DFF
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("liberty output missing %q", want)
		}
	}
	// Fill cells are excluded.
	if strings.Contains(out, "cell (FILL_X1)") {
		t.Fatal("fill cell exported")
	}
	// Braces balance.
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Fatalf("unbalanced braces: %d vs %d",
			strings.Count(out, "{"), strings.Count(out, "}"))
	}
	// Each input pin of NAND3 contributes one timing arc.
	n3 := out[strings.Index(out, "cell (NAND3_X1)"):]
	n3 = n3[:strings.Index(n3, "\n  cell (")]
	if got := strings.Count(n3, "timing ()"); got != 3 {
		t.Fatalf("NAND3 arcs = %d, want 3", got)
	}
}

func TestWriteLibertyAnnotated(t *testing.T) {
	lib, tl := env(t)
	var drawn, fast bytes.Buffer
	slews := []float64{10, 40}
	loads := []float64{2, 8}
	if err := tl.WriteLiberty(&drawn, lib, nil, slews, loads); err != nil {
		t.Fatal(err)
	}
	if err := tl.WriteLiberty(&fast, lib, Uniform(80), slews, loads); err != nil {
		t.Fatal(err)
	}
	if drawn.String() == fast.String() {
		t.Fatal("annotated library must differ from drawn")
	}
}

func TestWriteLibertyBadGrid(t *testing.T) {
	lib, tl := env(t)
	var buf bytes.Buffer
	if err := tl.WriteLiberty(&buf, lib, nil, []float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("degenerate grid accepted")
	}
}
