package timinglib

import (
	"fmt"
	"sort"
)

// Table is an NLDM-style 2-D lookup table: delay (or slew) indexed by input
// slew and output load, bilinearly interpolated, with clamped extrapolation
// at the grid edges — the representation sign-off libraries ship.
type Table struct {
	// SlewsPS and LoadsFF are the ascending index vectors.
	SlewsPS []float64
	LoadsFF []float64
	// Values[i][j] corresponds to SlewsPS[i], LoadsFF[j].
	Values [][]float64
}

// CellTables bundles the four NLDM tables of a combinational arc set.
type CellTables struct {
	DelayRise, DelayFall *Table
	SlewRise, SlewFall   *Table
}

// BuildTables samples the analytic model into NLDM tables on the given
// grid. All cells in this library share arc topology, so one table set per
// cell (per annotation) is enough.
func (tl *Lib) BuildTables(ev Eval, slewsPS, loadsFF []float64) (CellTables, error) {
	if len(slewsPS) < 2 || len(loadsFF) < 2 {
		return CellTables{}, fmt.Errorf("timinglib: table grid needs at least 2x2 points")
	}
	if !sort.Float64sAreSorted(slewsPS) || !sort.Float64sAreSorted(loadsFF) {
		return CellTables{}, fmt.Errorf("timinglib: table index vectors must be ascending")
	}
	mk := func(rise, slew bool) *Table {
		t := &Table{
			SlewsPS: append([]float64(nil), slewsPS...),
			LoadsFF: append([]float64(nil), loadsFF...),
		}
		for _, s := range slewsPS {
			row := make([]float64, 0, len(loadsFF))
			for _, l := range loadsFF {
				d, os := tl.ArcDelay(ev, rise, l, s)
				if slew {
					row = append(row, os)
				} else {
					row = append(row, d)
				}
			}
			t.Values = append(t.Values, row)
		}
		return t
	}
	return CellTables{
		DelayRise: mk(true, false),
		DelayFall: mk(false, false),
		SlewRise:  mk(true, true),
		SlewFall:  mk(false, true),
	}, nil
}

// Lookup bilinearly interpolates the table (clamping outside the grid).
func (t *Table) Lookup(slewPS, loadFF float64) float64 {
	i := bracket(t.SlewsPS, slewPS)
	j := bracket(t.LoadsFF, loadFF)
	s0, s1 := t.SlewsPS[i], t.SlewsPS[i+1]
	l0, l1 := t.LoadsFF[j], t.LoadsFF[j+1]
	ts := clamp01((slewPS - s0) / (s1 - s0))
	tlod := clamp01((loadFF - l0) / (l1 - l0))
	v00 := t.Values[i][j]
	v01 := t.Values[i][j+1]
	v10 := t.Values[i+1][j]
	v11 := t.Values[i+1][j+1]
	return v00*(1-ts)*(1-tlod) + v01*(1-ts)*tlod + v10*ts*(1-tlod) + v11*ts*tlod
}

// bracket returns the lower index of the interval containing v (clamped).
func bracket(xs []float64, v float64) int {
	i := sort.SearchFloat64s(xs, v) - 1
	if i < 0 {
		i = 0
	}
	if i > len(xs)-2 {
		i = len(xs) - 2
	}
	return i
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
