// Package timinglib turns standard-cell geometry plus the compact device
// model into the cell-level timing and leakage numbers STA consumes: input
// pin capacitances, effective drive resistances per transition, delay and
// output-slew evaluation, and per-cell leakage — all parameterized by the
// per-gate-site effective channel length, which is exactly the annotation
// interface the post-OPC flow uses.
//
// The delay model is an effective-current (CV/I) model with a linear
// input-slew term; NLDM-style lookup tables can be generated from it (see
// Table) for interoperability-flavoured workflows and for the table-vs-
// analytic ablation.
package timinglib

import (
	"fmt"

	"postopc/internal/device"
	"postopc/internal/layout"
	"postopc/internal/pdk"
	"postopc/internal/stdcell"
)

// Lengths is the per-gate-site effective-length annotation: DelayL drives
// the arc delays, LeakL the static power. Both in nm. RContactOhm
// optionally carries the extracted per-device contact resistance
// (multi-layer extraction); zero means ideal/drawn contacts.
type Lengths struct {
	DelayL, LeakL float64
	RContactOhm   float64
}

// Annotator supplies effective lengths for a cell's gate sites. The site
// names are cell-local ("MN0_0"); the flow wraps this with per-instance
// extraction results. Returning the drawn length reproduces sign-off-style
// drawn-CD timing.
type Annotator func(site layout.GateSite) Lengths

// Drawn is the default annotator: every device at its drawn length.
func Drawn(site layout.GateSite) Lengths {
	l := float64(site.L())
	return Lengths{DelayL: l, LeakL: l}
}

// Uniform returns an annotator with every device at the given length.
func Uniform(lNM float64) Annotator {
	return func(layout.GateSite) Lengths { return Lengths{DelayL: lNM, LeakL: lNM} }
}

// Guardband returns the classic sign-off annotator: every device at its
// drawn length plus a blanket worst-case CD margin (positive = slower).
func Guardband(deltaNM float64) Annotator {
	return func(site layout.GateSite) Lengths {
		l := float64(site.L()) + deltaNM
		return Lengths{DelayL: l, LeakL: l}
	}
}

// Eval holds the evaluated electrical view of one cell (for one
// annotation).
type Eval struct {
	// CinFF maps input pin -> capacitance (fF).
	CinFF map[string]float64
	// IRiseUA and IFallUA are the effective pull-up/pull-down currents
	// (µA) driving output rise and fall.
	IRiseUA, IFallUA float64
	// RcRiseOhm and RcFallOhm are the extracted series contact
	// resistances of the pull-up/pull-down networks (0 = ideal).
	RcRiseOhm, RcFallOhm float64
	// LeakNW is the cell's static leakage (nW).
	LeakNW float64
	// Cell is the evaluated master.
	Cell *stdcell.Info
}

// Lib computes cell timing for a library.
type Lib struct {
	// Dev is the device model.
	Dev device.Model
	// P is the kit's electrical parameter block.
	P pdk.Device
}

// New builds the timing library for a kit.
func New(p *pdk.PDK) *Lib {
	return &Lib{Dev: device.New(p.Device), P: p.Device}
}

// Evaluate computes the electrical view of a cell under an annotation.
func (tl *Lib) Evaluate(cell *stdcell.Info, ann Annotator) (Eval, error) {
	if cell.Kind == stdcell.Fill {
		return Eval{}, fmt.Errorf("timinglib: fill cell %s has no timing", cell.Name)
	}
	if ann == nil {
		ann = Drawn
	}
	ev := Eval{CinFF: map[string]float64{}, Cell: cell}
	var inUA, ipUA float64 // summed drive per network
	var rcN, rcP float64   // summed contact resistance per network
	var nN, nP int
	for _, g := range cell.Layout.Gates {
		ln := ann(g)
		wUm := float64(g.W()) / 1000
		// Input capacitance: gate area term (per µm of width; the drawn
		// length is the poly the driver must charge, so drawn L is used).
		ev.CinFF[g.Pin] += tl.P.CGateFFUM * wUm
		// Drive at the annotated delay length.
		if g.Kind == layout.NMOS {
			inUA += wUm * tl.Dev.IonPerUm(layout.NMOS, ln.DelayL)
			rcN += ln.RContactOhm
			nN++
		} else {
			ipUA += wUm * tl.Dev.IonPerUm(layout.PMOS, ln.DelayL)
			rcP += ln.RContactOhm
			nP++
		}
		// Leakage at the annotated leakage length; on average half the
		// devices block.
		ev.LeakNW += 0.5 * wUm * tl.Dev.IoffPerUm(g.Kind, ln.LeakL) * tl.P.VDD
	}
	// Series stacks divide the available drive and chain their contacts.
	ev.IFallUA = inUA / float64(maxI(cell.StackedN, 1))
	ev.IRiseUA = ipUA / float64(maxI(cell.StackedP, 1))
	if nN > 0 {
		ev.RcFallOhm = rcN / float64(nN) * float64(maxI(cell.StackedN, 1))
	}
	if nP > 0 {
		ev.RcRiseOhm = rcP / float64(nP) * float64(maxI(cell.StackedP, 1))
	}
	return ev, nil
}

// Timing constants of the CV/I model.
const (
	// kDelay scales the RC product into a 50% propagation delay.
	kDelay = 0.69
	// kSlew scales the RC product into the 10-90% output transition.
	kSlew = 1.8
	// kSlewIn is the input-slew sensitivity of the delay.
	kSlewIn = 0.12
	// minSlewPS floors output transitions.
	minSlewPS = 4.0
)

// ArcDelay returns the propagation delay and output slew (both ps) of an
// input-to-output arc for the given output transition, load (fF) and input
// slew (ps).
func (tl *Lib) ArcDelay(ev Eval, outRise bool, loadFF, inSlewPS float64) (delayPS, outSlewPS float64) {
	i := ev.IFallUA
	rcon := ev.RcFallOhm
	if outRise {
		i = ev.IRiseUA
		rcon = ev.RcRiseOhm
	}
	if i <= 0 {
		// A cell with no drive (should not happen for comb cells): huge
		// delay rather than a crash.
		return 1e9, 1e9
	}
	// R·C in ps: C[fF]·VDD[V]/I[µA] × 1000, plus the extracted contact
	// series resistance (Ω·fF = 10⁻³ ps).
	rc := loadFF*tl.P.VDD/i*1000 + loadFF*rcon*1e-3
	delayPS = kDelay*rc + kSlewIn*inSlewPS
	outSlewPS = kSlew*rc + minSlewPS
	return
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
