package timinglib

import (
	"math"
	"testing"

	"postopc/internal/geom"
	"postopc/internal/layout"
	"postopc/internal/pdk"
	"postopc/internal/stdcell"
)

var (
	testLib *stdcell.Library
	testTL  *Lib
)

func env(t *testing.T) (*stdcell.Library, *Lib) {
	t.Helper()
	if testLib == nil {
		l, err := stdcell.NewLibrary(pdk.N90())
		if err != nil {
			t.Fatal(err)
		}
		testLib = l
		testTL = New(l.PDK)
	}
	return testLib, testTL
}

func TestEvaluateInverter(t *testing.T) {
	lib, tl := env(t)
	inv := lib.Cells["INV_X1"]
	ev, err := tl.Evaluate(inv, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev.CinFF["A"] <= 0 {
		t.Fatal("input cap must be positive")
	}
	// X1 inverter input cap ~ (0.52+0.78)µm × 1.6fF/µm ≈ 2.1fF.
	if ev.CinFF["A"] < 1 || ev.CinFF["A"] > 4 {
		t.Fatalf("Cin = %.2f fF implausible", ev.CinFF["A"])
	}
	if ev.IFallUA <= 0 || ev.IRiseUA <= 0 {
		t.Fatal("drive currents must be positive")
	}
	// NMOS per-µm out-drives PMOS but Wp > Wn; the X1 ratio keeps fall
	// faster or equal.
	if ev.IFallUA < ev.IRiseUA*0.8 {
		t.Fatalf("drive balance off: fall %.1f rise %.1f", ev.IFallUA, ev.IRiseUA)
	}
	if ev.LeakNW <= 0 {
		t.Fatal("leakage must be positive")
	}
}

func TestEvaluateStackDerating(t *testing.T) {
	lib, tl := env(t)
	evInv, _ := tl.Evaluate(lib.Cells["INV_X1"], nil)
	evNand, _ := tl.Evaluate(lib.Cells["NAND2_X1"], nil)
	// NAND2's pull-down is a 2-stack: per-strip NMOS width is larger but
	// effective fall drive per total width must reflect the /2 derating.
	// Directly: NAND2 fall current / its total NMOS width should be about
	// half the inverter's ratio.
	wInv := float64(totalW(lib.Cells["INV_X1"], layout.NMOS))
	wNand := float64(totalW(lib.Cells["NAND2_X1"], layout.NMOS))
	rInv := evInv.IFallUA / wInv
	rNand := evNand.IFallUA / wNand
	if math.Abs(rNand-rInv/2) > 0.05*rInv {
		t.Fatalf("stack derating: inv %.3f nand %.3f (want ratio 2)", rInv, rNand)
	}
}

func totalW(c *stdcell.Info, k layout.DeviceKind) (w int64) {
	for _, g := range c.Layout.Gates {
		if g.Kind == k {
			w += int64(g.W())
		}
	}
	return
}

func TestEvaluateFillRejected(t *testing.T) {
	lib, tl := env(t)
	if _, err := tl.Evaluate(lib.Cells["FILL_X1"], nil); err == nil {
		t.Fatal("fill cells have no timing")
	}
}

func TestArcDelayMonotoneInLoad(t *testing.T) {
	lib, tl := env(t)
	ev, _ := tl.Evaluate(lib.Cells["INV_X1"], nil)
	d1, s1 := tl.ArcDelay(ev, true, 2, 20)
	d2, s2 := tl.ArcDelay(ev, true, 8, 20)
	if !(d2 > d1 && s2 > s1) {
		t.Fatalf("load sensitivity: %g/%g -> %g/%g", d1, s1, d2, s2)
	}
	// Slew sensitivity.
	d3, _ := tl.ArcDelay(ev, true, 2, 80)
	if !(d3 > d1) {
		t.Fatal("input slew must add delay")
	}
}

func TestArcDelayFO4Plausible(t *testing.T) {
	lib, tl := env(t)
	ev, _ := tl.Evaluate(lib.Cells["INV_X1"], nil)
	fo4 := 4 * ev.CinFF["A"]
	d, _ := tl.ArcDelay(ev, false, fo4, 30)
	// 90nm FO4 is ~25-45ps; our synthetic kit should land in the same
	// decade.
	if d < 8 || d > 120 {
		t.Fatalf("FO4 delay = %.1fps implausible", d)
	}
}

func TestAnnotationChangesDriveAndLeak(t *testing.T) {
	lib, tl := env(t)
	inv := lib.Cells["INV_X1"]
	nom, _ := tl.Evaluate(inv, nil)
	short, _ := tl.Evaluate(inv, Uniform(80))
	long, _ := tl.Evaluate(inv, Uniform(100))
	if !(short.IFallUA > nom.IFallUA && nom.IFallUA > long.IFallUA) {
		t.Fatal("drive vs L ordering")
	}
	if !(short.LeakNW > nom.LeakNW && nom.LeakNW > long.LeakNW) {
		t.Fatal("leak vs L ordering")
	}
	// Input cap is drawn-geometry based: unchanged by annotation.
	if short.CinFF["A"] != nom.CinFF["A"] {
		t.Fatal("annotation must not change input cap")
	}
}

func TestZeroDriveGuard(t *testing.T) {
	_, tl := env(t)
	d, s := tl.ArcDelay(Eval{}, true, 5, 20)
	if d < 1e8 || s < 1e8 {
		t.Fatal("zero-drive arc should return a huge delay, not crash")
	}
}

func TestBuildTablesMatchesAnalytic(t *testing.T) {
	lib, tl := env(t)
	ev, _ := tl.Evaluate(lib.Cells["NAND2_X1"], nil)
	slews := []float64{5, 20, 60, 150}
	loads := []float64{1, 4, 12, 30}
	tabs, err := tl.BuildTables(ev, slews, loads)
	if err != nil {
		t.Fatal(err)
	}
	// On-grid lookups are exact.
	dGrid, _ := tl.ArcDelay(ev, true, 12, 60)
	if got := tabs.DelayRise.Lookup(60, 12); math.Abs(got-dGrid) > 1e-9 {
		t.Fatalf("on-grid lookup %g vs %g", got, dGrid)
	}
	// Off-grid interpolation tracks the analytic model closely (the model
	// is affine in load and slew, so bilinear interpolation is exact).
	dOff, _ := tl.ArcDelay(ev, true, 7.3, 41)
	if got := tabs.DelayRise.Lookup(41, 7.3); math.Abs(got-dOff) > 1e-6 {
		t.Fatalf("off-grid lookup %g vs %g", got, dOff)
	}
	// Clamped extrapolation doesn't explode.
	if got := tabs.SlewFall.Lookup(1e6, 1e6); math.IsNaN(got) || got <= 0 {
		t.Fatalf("clamped lookup = %g", got)
	}
}

func TestBuildTablesValidation(t *testing.T) {
	lib, tl := env(t)
	ev, _ := tl.Evaluate(lib.Cells["INV_X1"], nil)
	if _, err := tl.BuildTables(ev, []float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("1-point slew grid accepted")
	}
	if _, err := tl.BuildTables(ev, []float64{2, 1}, []float64{1, 2}); err == nil {
		t.Fatal("descending grid accepted")
	}
}

func TestDrawnAnnotator(t *testing.T) {
	site := layout.GateSite{Kind: layout.NMOS, Channel: geom.R(0, 0, 90, 520)}
	l := Drawn(site)
	if l.DelayL != 90 || l.LeakL != 90 {
		t.Fatalf("drawn lengths = %+v", l)
	}
}
